// Package core assembles the paper's contribution: the Common Reusable
// Verification Environment. One environment — harnesses, monitors, protocol
// checkers, scoreboard, functional coverage (all from internal/catg) — into
// which either design view plugs unchanged:
//
//	DUT (RTL or BCA)  ←→  CATG bench  →  reports + VCD
//
// RunTest executes one (test file, seed) pair against one view; RunPair
// executes the same pair against both views, streams the STBus Analyzer
// comparison across them (full VCD dumps are opt-in artifacts, no longer the
// comparison medium) and checks functional-coverage equality — the full
// flow of the paper's Figures 4 and 5.
package core

import (
	"bytes"
	"context"
	"fmt"

	"crve/internal/bca"
	"crve/internal/catg"
	"crve/internal/coverage"
	"crve/internal/nodespec"
	"crve/internal/rtl"
	"crve/internal/sim"
	"crve/internal/stba"
	"crve/internal/stbus"
	"crve/internal/vcd"
)

// View names a design view of the IP.
type View int

const (
	// RTLView is the synthesisable signal-level model.
	RTLView View = iota
	// BCAView is the bus-cycle-accurate model wrapped for the common bench.
	BCAView
)

func (v View) String() string {
	if v == BCAView {
		return "BCA"
	}
	return "RTL"
}

// DUT is what the common environment needs from a design view: its port
// bundles and, when available, its code-coverage instrumentation. Both node
// views satisfy it through the adapters below.
type DUT interface {
	// InitPorts returns the initiator-facing ports.
	InitPorts() []*stbus.Port
	// TgtPorts returns the target-facing ports.
	TgtPorts() []*stbus.Port
	// CodeCoverage returns the instrumentation map, nil when the view has
	// none (the BCA case: "no tool is able to generate this metrics for
	// SystemC").
	CodeCoverage() *coverage.CodeMap
	// View identifies the design view.
	View() View
}

type rtlDUT struct{ n *rtl.Node }

func (d rtlDUT) InitPorts() []*stbus.Port        { return d.n.Init }
func (d rtlDUT) TgtPorts() []*stbus.Port         { return d.n.Tgt }
func (d rtlDUT) CodeCoverage() *coverage.CodeMap { return d.n.Code }
func (d rtlDUT) View() View                      { return RTLView }

type bcaDUT struct{ n *bca.Node }

func (d bcaDUT) InitPorts() []*stbus.Port        { return d.n.Init }
func (d bcaDUT) TgtPorts() []*stbus.Port         { return d.n.Tgt }
func (d bcaDUT) CodeCoverage() *coverage.CodeMap { return nil }
func (d bcaDUT) View() View                      { return BCAView }

// BuildDUT elaborates the requested view of the node under sc. bugs applies
// to the BCA view only (the RTL view is the reference).
func BuildDUT(sc sim.Scope, cfg nodespec.Config, view View, bugs bca.Bugs) (DUT, error) {
	switch view {
	case RTLView:
		n, err := rtl.NewNode(sc, cfg)
		if err != nil {
			return nil, err
		}
		return rtlDUT{n}, nil
	case BCAView:
		n, err := bca.NewNode(sc, cfg, bugs)
		if err != nil {
			return nil, err
		}
		return bcaDUT{n}, nil
	default:
		return nil, fmt.Errorf("core: unknown view %d", int(view))
	}
}

// Test is one test file of the suite: named traffic and target-timing
// constraints, reusable across every node configuration (the paper's twelve
// "generic" test cases "depend on some HDL parameters" and "can be reused
// for all configurations").
type Test struct {
	Name string
	// Traffic configures the initiator BFMs. TrafficFor allows per-initiator
	// specialisation; when nil, Traffic applies to every initiator.
	Traffic    catg.TrafficConfig
	TrafficFor func(cfg nodespec.Config, initIdx int) catg.TrafficConfig
	// Target configures the target BFMs. TargetFor allows per-target
	// specialisation (e.g. one slow target to force out-of-order traffic).
	Target    catg.TargetConfig
	TargetFor func(cfg nodespec.Config, tgtIdx int) catg.TargetConfig
	// MaxCycles bounds the run (0 = derived from traffic volume).
	MaxCycles int
}

func (t Test) trafficFor(cfg nodespec.Config, i int) catg.TrafficConfig {
	if t.TrafficFor != nil {
		return t.TrafficFor(cfg, i)
	}
	return t.Traffic
}

func (t Test) targetFor(cfg nodespec.Config, tg int) catg.TargetConfig {
	if t.TargetFor != nil {
		return t.TargetFor(cfg, tg)
	}
	return t.Target
}

// RunResult is the verification report of one (test, seed, view) run.
type RunResult struct {
	Test  string
	Seed  int64
	View  View
	DUTIn nodespec.Config

	Cycles       uint64
	Drained      bool
	Transactions int
	// Latencies holds one total latency (cycles) per completed initiator-side
	// transaction, for performance analyses.
	Latencies   []uint64
	Violations  []catg.Violation
	ScoreErrors []string
	Coverage    *coverage.Group
	CodeCov     *coverage.CodeMap
	VCD         []byte
	// Wave is the compact binary waveform recording, captured when
	// RunOptions.RecordWave is set — the storable artifact that can re-serve
	// values or the byte-identical text VCD on demand.
	Wave *vcd.Recording
	// Alignment is the streaming STBA report against RunOptions.AlignWith.
	Alignment *stba.Report
	// Kernel is the simulation-kernel profile, collected when
	// RunOptions.KernelStats is set.
	Kernel *sim.KernelStats
}

// Passed reports whether every automatic check of the run succeeded.
func (r *RunResult) Passed() bool {
	return r.Drained && len(r.Violations) == 0 && len(r.ScoreErrors) == 0
}

// Summary renders the one-line verdict of the run.
func (r *RunResult) Summary() string {
	verdict := "PASS"
	if !r.Passed() {
		verdict = "FAIL"
	}
	return fmt.Sprintf("%-4s %-24s seed=%-6d %s: %d cycles, %d txs, %d violations, %d scoreboard errors, cov %.1f%%",
		r.View, r.Test, r.Seed, verdict, r.Cycles, r.Transactions, len(r.Violations),
		len(r.ScoreErrors), r.Coverage.Percent())
}

// RunOptions tunes a RunTest invocation.
type RunOptions struct {
	// DumpVCD captures the DUT port waveforms as full-fidelity text VCD.
	// The paired comparison no longer needs it: alignment streams online.
	DumpVCD bool
	// RecordWave captures the DUT port waveforms as a compact binary
	// Recording (RunResult.Wave) — the artifact tier that replaces text VCD.
	RecordWave bool
	// AlignWith, when set, attaches a streaming STBA observer comparing the
	// run's port signals cycle-by-cycle against this reference recording;
	// the per-port report lands in RunResult.Alignment.
	AlignWith *vcd.Recording
	// LegacyAlignment makes RunPairOpt compute alignment through the
	// write-two-VCDs / parse / Compare round trip instead of the observer —
	// kept for ablation and equivalence testing.
	LegacyAlignment bool
	// KernelStats collects the kernel profile (per-process evaluation
	// counts, settle-depth histogram, SCC inventory) into RunResult.Kernel,
	// and enables sampled per-process wall-time collection.
	KernelStats bool
	// Kernel selects the simulation backend (levelized by default; compiled
	// fuses IR-declared processes into the flat bytecode program).
	Kernel sim.Kernel
	// Bugs applies to the BCA view.
	Bugs bca.Bugs
}

// RunTest builds a fresh simulator, elaborates the requested view, wires the
// common bench around it, runs the test to drain and collects every report.
func RunTest(cfg nodespec.Config, view View, test Test, seed int64, opt RunOptions) (*RunResult, error) {
	return RunTestCtx(context.Background(), cfg, view, test, seed, opt)
}

// benchInst is one fully wired bench+DUT instance: the per-run state of
// RunTestCtx, factored out so the lane-parallel runner (lanes.go) can
// elaborate one instance per lane on a shared simulator.
type benchInst struct {
	dut        DUT
	res        *RunResult
	bfms       []*catg.InitiatorBFM
	initMons   []*catg.Monitor
	tgtMons    []*catg.Monitor
	checkers   []*catg.Checker
	sb         *catg.Scoreboard
	cov        *catg.CoverageModel
	traceSigs  []*sim.Signal
	totalCells int
	buf        bytes.Buffer
	wr         *vcd.Writer
	rc         *vcd.Recorder
	obs        *stba.Observer
}

// buildBench elaborates the requested view under sm and wires the common
// environment around it: BFMs, monitors, checkers, scoreboard, coverage, and
// whichever waveform/alignment taps the options request. cfg must already
// have its defaults applied.
func buildBench(sm *sim.Simulator, cfg nodespec.Config, view View, test Test, seed int64, opt RunOptions) (*benchInst, error) {
	b := &benchInst{res: &RunResult{Test: test.Name, Seed: seed, View: view, DUTIn: cfg}}
	dut, err := BuildDUT(sim.Root(sm), cfg, view, opt.Bugs)
	if err != nil {
		return nil, err
	}
	b.dut = dut

	// traceSigs collects the DUT port signals, in port order, for whichever
	// waveform/alignment taps the options request.
	tracing := opt.DumpVCD || opt.RecordWave || opt.AlignWith != nil
	for i, p := range dut.InitPorts() {
		ops := catg.GenerateOps(cfg, test.trafficFor(cfg, i), i, seed)
		for _, o := range ops {
			b.totalCells += len(o.Cells) + o.IdleBefore
		}
		b.bfms = append(b.bfms, catg.NewInitiatorBFM(sm, p, ops))
		mon := catg.NewMonitor(sm, p, i, true, catg.NodeRouter(cfg, i))
		res := b.res
		mon.OnComplete(func(tr *stbus.Transaction) {
			res.Latencies = append(res.Latencies, tr.Latency())
		})
		b.initMons = append(b.initMons, mon)
		b.checkers = append(b.checkers, catg.NewChecker(sm, p, cfg, true, catg.NodeRouter(cfg, i)))
		if tracing {
			b.traceSigs = append(b.traceSigs, p.Signals()...)
		}
	}
	for tg, p := range dut.TgtPorts() {
		catg.NewTargetBFM(sm, p, test.targetFor(cfg, tg), catg.TargetSeed(seed, tg))
		b.tgtMons = append(b.tgtMons, catg.NewMonitor(sm, p, tg, false, nil))
		b.checkers = append(b.checkers, catg.NewChecker(sm, p, cfg, false, nil))
		if tracing {
			b.traceSigs = append(b.traceSigs, p.Signals()...)
		}
	}
	b.sb = catg.NewScoreboard(cfg, b.initMons, b.tgtMons)
	b.cov = catg.NewCoverageModel(cfg, test.trafficFor(cfg, 0))
	b.cov.SubscribeMonitors(sm, b.initMons)
	if opt.DumpVCD {
		b.wr = vcd.NewWriter(&b.buf, "tb")
		for _, s := range b.traceSigs {
			b.wr.Declare(s)
		}
		b.wr.Attach(sm)
	}
	if opt.RecordWave {
		b.rc = vcd.NewRecorder("tb")
		for _, s := range b.traceSigs {
			b.rc.Declare(s)
		}
		b.rc.Attach(sm)
	}
	if opt.AlignWith != nil {
		b.obs, err = stba.NewObserver(opt.AlignWith, b.traceSigs)
		if err != nil {
			return nil, err
		}
		b.obs.Attach(sm)
	}
	return b, nil
}

// limit returns the run's cycle bound: the test's own, or one derived from
// this bench's traffic volume.
func (b *benchInst) limit(test Test) int {
	if test.MaxCycles != 0 {
		return test.MaxCycles
	}
	return 2000 + b.totalCells*60
}

// done reports whether every initiator BFM has drained its program.
func (b *benchInst) done() bool {
	for _, bf := range b.bfms {
		if !bf.Done() {
			return false
		}
	}
	return true
}

// collect finalises the run report from the bench observers. The caller has
// already set Drained and Cycles.
func (b *benchInst) collect() (*RunResult, error) {
	res := b.res
	for _, c := range b.checkers {
		res.Violations = append(res.Violations, c.Violations...)
	}
	res.ScoreErrors = b.sb.Check()
	res.Coverage = b.cov.Group
	res.CodeCov = b.dut.CodeCoverage()
	for _, m := range b.initMons {
		res.Transactions += len(m.CompletedTxs())
	}
	if b.wr != nil {
		if err := b.wr.Flush(); err != nil {
			return nil, err
		}
		res.VCD = b.buf.Bytes()
	}
	if b.rc != nil {
		res.Wave = b.rc.Recording()
	}
	if b.obs != nil {
		res.Alignment = b.obs.Report()
	}
	return res, nil
}

// RunTestCtx is RunTest under a cancellation context: the run loop polls ctx
// every few cycles and aborts with ctx's error, so a served job can be
// cancelled mid-simulation, not just between units. A context without a
// cancel path (context.Background()) costs the hot loop nothing.
func RunTestCtx(ctx context.Context, cfg nodespec.Config, view View, test Test, seed int64, opt RunOptions) (*RunResult, error) {
	cfg = cfg.WithDefaults()
	sm := sim.New()
	sm.Kernel = opt.Kernel
	sm.Timing = opt.KernelStats
	b, err := buildBench(sm, cfg, view, test, seed, opt)
	if err != nil {
		return nil, err
	}
	limit := b.limit(test)
	done := b.done
	cancelled := false
	if ctx.Done() != nil {
		inner := done
		tick := 0
		done = func() bool {
			if tick++; tick&63 == 0 && ctx.Err() != nil {
				cancelled = true
				return true // stop RunUntil; the abort is detected below
			}
			return inner()
		}
	}
	err = sm.RunUntil(done, limit)
	if cancelled {
		return nil, fmt.Errorf("core: %s %s seed %d: %w", view, test.Name, seed, ctx.Err())
	}
	b.res.Drained = err == nil
	if err == nil {
		// A short tail so registered responses and monitors settle.
		if err := sm.Run(5); err != nil {
			return nil, err
		}
	}
	b.res.Cycles = sm.Cycle()
	res, err := b.collect()
	if err != nil {
		return nil, err
	}
	if opt.KernelStats {
		res.Kernel = sm.Stats()
	}
	return res, nil
}

// PairResult is the outcome of running the same (test, seed) on both views
// and comparing them — the complete common-flow iteration of Figure 4.
type PairResult struct {
	RTL, BCA *RunResult
	// Alignment is the per-port STBA comparison of the two waveform dumps.
	Alignment *stba.Report
	// CoverageEqual reports whether functional coverage matched bin by bin.
	CoverageEqual bool
	CoverageDiff  string
}

// SignedOff reports the paper's sign-off criterion: both runs pass their
// checks, functional coverage is identical, and every port is at or above
// the 99 % alignment rate.
func (p *PairResult) SignedOff() bool {
	return p.RTL.Passed() && p.BCA.Passed() && p.CoverageEqual && p.Alignment.AllPass()
}

// RunPair runs one (test, seed) against the RTL and the BCA views, then
// performs the bus-accurate comparison and the coverage-equality check.
func RunPair(cfg nodespec.Config, test Test, seed int64, bugs bca.Bugs) (*PairResult, error) {
	return RunPairOpt(cfg, test, seed, RunOptions{Bugs: bugs})
}

// RunPairOpt is RunPair with full run options. By default the bus-accurate
// comparison streams: the RTL run captures a compact binary recording, the
// BCA run replays it through an online observer, and no VCD text is ever
// built — DumpVCD and RecordWave are honoured as given, purely as artifact
// requests. LegacyAlignment restores the write/parse/Compare round trip.
func RunPairOpt(cfg nodespec.Config, test Test, seed int64, opt RunOptions) (*PairResult, error) {
	return RunPairCtx(context.Background(), cfg, test, seed, opt)
}

// RunPairCtx is RunPairOpt under a cancellation context, threaded through
// both view runs.
func RunPairCtx(ctx context.Context, cfg nodespec.Config, test Test, seed int64, opt RunOptions) (*PairResult, error) {
	if opt.LegacyAlignment {
		return runPairLegacy(ctx, cfg, test, seed, opt)
	}
	rtlOpt := RunOptions{DumpVCD: opt.DumpVCD, RecordWave: true, KernelStats: opt.KernelStats, Kernel: opt.Kernel}
	rres, err := RunTestCtx(ctx, cfg, RTLView, test, seed, rtlOpt)
	if err != nil {
		return nil, fmt.Errorf("core: RTL run: %w", err)
	}
	bcaOpt := RunOptions{
		DumpVCD: opt.DumpVCD, RecordWave: opt.RecordWave, AlignWith: rres.Wave,
		KernelStats: opt.KernelStats, Kernel: opt.Kernel, Bugs: opt.Bugs,
	}
	bres, err := RunTestCtx(ctx, cfg, BCAView, test, seed, bcaOpt)
	if err != nil {
		return nil, fmt.Errorf("core: BCA run: %w", err)
	}
	pr := &PairResult{RTL: rres, BCA: bres, Alignment: bres.Alignment}
	bres.Alignment = nil
	if !opt.RecordWave {
		// The RTL recording was only the alignment reference; drop it unless
		// the caller asked for the artifact.
		rres.Wave = nil
	}
	pr.CoverageEqual, pr.CoverageDiff = rres.Coverage.EqualHits(bres.Coverage)
	return pr, nil
}

// runPairLegacy is the pre-streaming pipeline: dump both runs as text VCD,
// parse both, Compare. Kept behind RunOptions.LegacyAlignment for ablation
// and for the streaming-equivalence property test.
func runPairLegacy(ctx context.Context, cfg nodespec.Config, test Test, seed int64, opt RunOptions) (*PairResult, error) {
	rtlOpt := RunOptions{DumpVCD: true, RecordWave: opt.RecordWave, KernelStats: opt.KernelStats, Kernel: opt.Kernel}
	rres, err := RunTestCtx(ctx, cfg, RTLView, test, seed, rtlOpt)
	if err != nil {
		return nil, fmt.Errorf("core: RTL run: %w", err)
	}
	bcaOpt := RunOptions{DumpVCD: true, RecordWave: opt.RecordWave, KernelStats: opt.KernelStats, Kernel: opt.Kernel, Bugs: opt.Bugs}
	bres, err := RunTestCtx(ctx, cfg, BCAView, test, seed, bcaOpt)
	if err != nil {
		return nil, fmt.Errorf("core: BCA run: %w", err)
	}
	fr, err := vcd.Parse(bytes.NewReader(rres.VCD))
	if err != nil {
		return nil, err
	}
	fb, err := vcd.Parse(bytes.NewReader(bres.VCD))
	if err != nil {
		return nil, err
	}
	rep, err := stba.Compare(fr, fb, nil)
	if err != nil {
		return nil, err
	}
	pr := &PairResult{RTL: rres, BCA: bres, Alignment: rep}
	if !opt.DumpVCD {
		// Legacy alignment needs the text dumps internally, but the caller
		// did not ask for them as artifacts — keep the result shape identical
		// to the streaming path.
		rres.VCD, bres.VCD = nil, nil
	}
	pr.CoverageEqual, pr.CoverageDiff = rres.Coverage.EqualHits(bres.Coverage)
	return pr, nil
}
