// Package api is the HTTP/JSON surface of the served verification flow
// (verification-as-a-service): submit a job, poll or stream its status,
// fetch its reports. It is a thin, stateless view over internal/jobs — every
// handler reads or mutates the job table through the Manager and encodes
// with the same canonical encoder the CLI uses (regress.WriteJSON), so a
// report fetched over HTTP is byte-identical to `regress -json` for the same
// matrix.
//
// Endpoints (all under /api/v1):
//
//	POST   /jobs                  submit a jobs.Spec, returns the queued status
//	GET    /jobs                  list job statuses
//	GET    /jobs/{id}             poll one status
//	POST   /jobs/{id}/cancel      cancel (DELETE /jobs/{id} is an alias)
//	GET    /jobs/{id}/events      live status stream (Server-Sent Events)
//	GET    /jobs/{id}/log         progress log, text/plain
//	GET    /jobs/{id}/report      canonical JSON report (regress -json shape)
//	GET    /jobs/{id}/coverage    per-config functional/code coverage
//	GET    /jobs/{id}/alignment   per-run STBA alignment reports
//	GET    /jobs/{id}/kernelstats merged per-config/view kernel profiles
//	GET    /jobs/{id}/closure     coverage-closure trajectories
//	GET    /jobs/{id}/waves       stored waveform unit keys
//	GET    /jobs/{id}/wave/{unit...}  one .crw recording (config/test/seed/view)
//	GET    /tests                 the generic suite's test names
//	GET    /version               code version keying the shared result cache
package api

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"

	"crve/internal/coverage"
	"crve/internal/jobs"
	"crve/internal/regress"
	"crve/internal/sim"
	"crve/internal/stba"
	"crve/internal/testcases"
)

// Server routes the API over a job manager.
type Server struct {
	mgr *jobs.Manager
	mux *http.ServeMux
}

// New builds the API server for mgr.
func New(mgr *jobs.Manager) *Server {
	s := &Server{mgr: mgr, mux: http.NewServeMux()}
	s.mux.HandleFunc("GET /healthz", s.health)
	s.mux.HandleFunc("GET /api/v1/version", s.version)
	s.mux.HandleFunc("GET /api/v1/tests", s.tests)
	s.mux.HandleFunc("POST /api/v1/jobs", s.submit)
	s.mux.HandleFunc("GET /api/v1/jobs", s.list)
	s.mux.HandleFunc("GET /api/v1/jobs/{id}", s.status)
	s.mux.HandleFunc("DELETE /api/v1/jobs/{id}", s.cancel)
	s.mux.HandleFunc("POST /api/v1/jobs/{id}/cancel", s.cancel)
	s.mux.HandleFunc("GET /api/v1/jobs/{id}/events", s.events)
	s.mux.HandleFunc("GET /api/v1/jobs/{id}/log", s.log)
	s.mux.HandleFunc("GET /api/v1/jobs/{id}/report", s.report)
	s.mux.HandleFunc("GET /api/v1/jobs/{id}/coverage", s.coverage)
	s.mux.HandleFunc("GET /api/v1/jobs/{id}/alignment", s.alignment)
	s.mux.HandleFunc("GET /api/v1/jobs/{id}/kernelstats", s.kernelstats)
	s.mux.HandleFunc("GET /api/v1/jobs/{id}/closure", s.closure)
	s.mux.HandleFunc("GET /api/v1/jobs/{id}/waves", s.waves)
	s.mux.HandleFunc("GET /api/v1/jobs/{id}/wave/{unit...}", s.wave)
	return s
}

// Handler returns the routable handler.
func (s *Server) Handler() http.Handler { return s.mux }

// errorBody is the JSON error envelope.
type errorBody struct {
	Error string `json:"error"`
}

// jsonDecoder decodes a request body strictly: an unknown field in a spec is
// a client typo, not something to silently ignore.
func jsonDecoder(r *http.Request) *json.Decoder {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	return dec
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	regress.WriteJSON(w, v)
}

func writeErr(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, errorBody{Error: fmt.Sprintf(format, args...)})
}

func (s *Server) health(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (s *Server) version(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"code_version": regress.CodeVersion()})
}

func (s *Server) tests(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string][]string{"tests": testcases.Names()})
}

func (s *Server) submit(w http.ResponseWriter, r *http.Request) {
	var spec jobs.Spec
	dec := jsonDecoder(r)
	if err := dec.Decode(&spec); err != nil {
		writeErr(w, http.StatusBadRequest, "bad spec: %v", err)
		return
	}
	job, err := s.mgr.Submit(spec)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, http.StatusAccepted, job.Status())
}

func (s *Server) list(w http.ResponseWriter, r *http.Request) {
	all := s.mgr.List()
	out := make([]jobs.Status, 0, len(all))
	for _, j := range all {
		out = append(out, j.Status())
	}
	writeJSON(w, http.StatusOK, map[string]any{"jobs": out})
}

// job resolves the {id} path value, writing the 404 itself on a miss.
func (s *Server) job(w http.ResponseWriter, r *http.Request) (*jobs.Job, bool) {
	id := r.PathValue("id")
	job, ok := s.mgr.Get(id)
	if !ok {
		writeErr(w, http.StatusNotFound, "unknown job %q", id)
		return nil, false
	}
	return job, true
}

// doneJob additionally requires the job to have results (state done).
func (s *Server) doneJob(w http.ResponseWriter, r *http.Request) (*jobs.Job, bool) {
	job, ok := s.job(w, r)
	if !ok {
		return nil, false
	}
	if st := job.Status(); st.State != jobs.Done {
		writeErr(w, http.StatusConflict, "job %s is %s: results are available once it is done", job.ID, st.State)
		return nil, false
	}
	return job, true
}

func (s *Server) status(w http.ResponseWriter, r *http.Request) {
	if job, ok := s.job(w, r); ok {
		writeJSON(w, http.StatusOK, job.Status())
	}
}

func (s *Server) cancel(w http.ResponseWriter, r *http.Request) {
	job, ok := s.job(w, r)
	if !ok {
		return
	}
	if err := s.mgr.Cancel(job.ID); err != nil {
		writeErr(w, http.StatusInternalServerError, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, job.Status())
}

func (s *Server) log(w http.ResponseWriter, r *http.Request) {
	if job, ok := s.job(w, r); ok {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, job.Log())
	}
}

// events streams status snapshots as Server-Sent Events: one event per
// merged work unit and state change, ending after the terminal snapshot.
func (s *Server) events(w http.ResponseWriter, r *http.Request) {
	job, ok := s.job(w, r)
	if !ok {
		return
	}
	fl, canFlush := w.(http.Flusher)
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-store")
	ch, cancel := job.Subscribe()
	defer cancel()
	// SSE data lines must be single-line: events use compact JSON, not the
	// multi-line canonical encoder.
	send := func(st jobs.Status) bool {
		data, err := json.Marshal(st)
		if err != nil {
			return false
		}
		if _, err := fmt.Fprintf(w, "data: %s\n\n", data); err != nil {
			return false
		}
		if canFlush {
			fl.Flush()
		}
		return true
	}
	if !send(job.Status()) {
		return
	}
	for {
		select {
		case st, open := <-ch:
			if !open {
				return
			}
			if !send(st) {
				return
			}
			if st.State.Terminal() {
				return
			}
		case <-r.Context().Done():
			return
		}
	}
}

func (s *Server) report(w http.ResponseWriter, r *http.Request) {
	job, ok := s.doneJob(w, r)
	if !ok {
		return
	}
	w.Header().Set("Content-Type", "application/json")
	regress.WriteJSON(w, job.Report())
}

// configCoverage is one configuration's coverage block.
type configCoverage struct {
	Name           string            `json:"name"`
	FuncCovPercent float64           `json:"func_cov_percent"`
	LineCovPercent float64           `json:"line_cov_percent"`
	Functional     *coverage.Group   `json:"functional"`
	Code           *coverage.CodeMap `json:"code,omitempty"`
	Holes          []string          `json:"holes,omitempty"`
}

func (s *Server) coverage(w http.ResponseWriter, r *http.Request) {
	job, ok := s.doneJob(w, r)
	if !ok {
		return
	}
	var out []configCoverage
	for _, cr := range job.Results() {
		cc := configCoverage{
			Name:           cr.Cfg.Name,
			FuncCovPercent: cr.SuiteCoverage.Percent(),
			LineCovPercent: cr.CodeCov.Percent(coverage.LinePoint),
			Functional:     cr.SuiteCoverage,
			Code:           cr.CodeCov,
		}
		for _, h := range cr.SuiteCoverage.Holes() {
			cc.Holes = append(cc.Holes, h.String())
		}
		out = append(out, cc)
	}
	writeJSON(w, http.StatusOK, map[string]any{"configs": out})
}

// runAlignment is one run's STBA block.
type runAlignment struct {
	Test   string       `json:"test"`
	Seed   int64        `json:"seed"`
	Report *stba.Report `json:"report"`
}

type configAlignment struct {
	Name         string         `json:"name"`
	MinAlignment float64        `json:"min_alignment"`
	Runs         []runAlignment `json:"runs"`
}

func (s *Server) alignment(w http.ResponseWriter, r *http.Request) {
	job, ok := s.doneJob(w, r)
	if !ok {
		return
	}
	var out []configAlignment
	for _, cr := range job.Results() {
		ca := configAlignment{Name: cr.Cfg.Name, MinAlignment: cr.MinAlignment}
		for _, run := range cr.Runs {
			ca.Runs = append(ca.Runs, runAlignment{Test: run.Test, Seed: run.Seed, Report: run.Pair.Alignment})
		}
		out = append(out, ca)
	}
	writeJSON(w, http.StatusOK, map[string]any{"configs": out})
}

// viewKernel is the merged kernel profile of one (config, view).
type viewKernel struct {
	Name  string           `json:"name"`
	View  string           `json:"view"`
	Runs  int              `json:"runs"`
	Stats *sim.KernelStats `json:"stats"`
}

func (s *Server) kernelstats(w http.ResponseWriter, r *http.Request) {
	job, ok := s.doneJob(w, r)
	if !ok {
		return
	}
	var out []viewKernel
	for _, cr := range job.Results() {
		for _, view := range []string{"RTL", "BCA"} {
			merged := &sim.KernelStats{}
			n := 0
			for _, run := range cr.Runs {
				res := run.Pair.RTL
				if view == "BCA" {
					res = run.Pair.BCA
				}
				if res.Kernel == nil {
					continue
				}
				merged.Merge(res.Kernel)
				n++
			}
			if n > 0 {
				out = append(out, viewKernel{Name: cr.Cfg.Name, View: view, Runs: n, Stats: merged})
			}
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{"configs": out})
}

func (s *Server) closure(w http.ResponseWriter, r *http.Request) {
	job, ok := s.doneJob(w, r)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"trajectories": job.Closures()})
}

func (s *Server) waves(w http.ResponseWriter, r *http.Request) {
	job, ok := s.doneJob(w, r)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"units": job.WaveUnits()})
}

// wave serves one stored .crw recording. The unit path is
// config/test/seed/view, e.g. /api/v1/jobs/j0001/wave/cfg00/basic_write_read/1/rtl.
func (s *Server) wave(w http.ResponseWriter, r *http.Request) {
	job, ok := s.doneJob(w, r)
	if !ok {
		return
	}
	unit := r.PathValue("unit")
	rec := job.Wave(unit)
	if rec == nil {
		writeErr(w, http.StatusNotFound, "no recording for unit %q (submit with record_wave, then see GET .../waves)", unit)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Disposition",
		fmt.Sprintf("attachment; filename=%q", strings.ReplaceAll(unit, "/", "_")+".crw"))
	w.Write(rec.Encode())
}
