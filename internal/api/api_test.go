package api_test

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"crve/internal/api"
	"crve/internal/arb"
	"crve/internal/core"
	"crve/internal/jobs"
	"crve/internal/nodespec"
	"crve/internal/regress"
	"crve/internal/stbus"
	"crve/internal/testcases"
	"crve/internal/vcd"
)

// testCfg is the configuration every test in this file runs.
func testCfg(t *testing.T, name string) nodespec.Config {
	t.Helper()
	cfg := nodespec.Config{
		Name:    name,
		Port:    stbus.PortConfig{Type: stbus.Type3, DataBits: 32},
		NumInit: 2, NumTgt: 2,
		Arch:   nodespec.FullCrossbar,
		ReqArb: arb.LRU, RespArb: arb.Priority,
		Map:      stbus.UniformMap(2, 0x1000, 0x800),
		PipeSize: 4,
	}.WithDefaults()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	return cfg
}

// newTestServer starts the full service in-process: shared cache, manager,
// API over httptest.
func newTestServer(t *testing.T) (*httptest.Server, *jobs.Manager) {
	t.Helper()
	cache, err := regress.OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	mgr := jobs.NewManager(jobs.Options{Cache: cache, Slots: 2, Workers: 2})
	srv := httptest.NewServer(api.New(mgr).Handler())
	t.Cleanup(func() {
		srv.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		mgr.Drain(ctx)
	})
	return srv, mgr
}

// postJob submits a spec and returns the queued status.
func postJob(t *testing.T, srv *httptest.Server, spec jobs.Spec) jobs.Status {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(srv.URL+"/api/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		data, _ := io.ReadAll(resp.Body)
		t.Fatalf("POST /jobs: %d: %s", resp.StatusCode, data)
	}
	var st jobs.Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// pollDone polls the status endpoint until the job is terminal.
func pollDone(t *testing.T, srv *httptest.Server, id string) jobs.Status {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		var st jobs.Status
		getJSON(t, srv, "/api/v1/jobs/"+id, &st)
		if st.State.Terminal() {
			return st
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s never finished", id)
	return jobs.Status{}
}

func getJSON(t *testing.T, srv *httptest.Server, path string, v any) {
	t.Helper()
	resp, err := http.Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		data, _ := io.ReadAll(resp.Body)
		t.Fatalf("GET %s: %d: %s", path, resp.StatusCode, data)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
}

func getBytes(t *testing.T, srv *httptest.Server, path string) []byte {
	t.Helper()
	resp, err := http.Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %d: %s", path, resp.StatusCode, data)
	}
	return data
}

// TestServiceE2E is the full HTTP lifecycle of the acceptance criteria:
// submit a job, stream its events, poll it done, fetch the canonical report
// (byte-identical to the engine-local encoding), coverage, alignment and
// kernel profiles, and download a stored .crw waveform.
func TestServiceE2E(t *testing.T) {
	srv, _ := newTestServer(t)
	cfg := testCfg(t, "api0")
	spec := jobs.Spec{
		Configs:     []string{regress.FormatConfig(cfg)},
		Tests:       []string{"basic_write_read", "error_paths"},
		Seeds:       []int64{1},
		KernelStats: true,
		RecordWave:  true,
	}
	units := 2

	st := postJob(t, srv, spec)
	if st.ID == "" || st.State.Terminal() {
		t.Fatalf("submitted job: id %q state %s", st.ID, st.State)
	}

	// Live SSE stream: read frames until the terminal one.
	sawTerminal := sseStates(t, srv, st.ID)
	if !sawTerminal {
		t.Error("SSE stream ended without a terminal event")
	}

	final := pollDone(t, srv, st.ID)
	if final.State != jobs.Done {
		t.Fatalf("job ended %s (%s), want done", final.State, final.Error)
	}
	if final.Progress.Ran != units || final.Progress.Cached != 0 || final.Progress.Done != units {
		t.Errorf("cold job progress %+v, want %d ran", final.Progress, units)
	}
	if final.Progress.ElapsedMS < 0 || final.Progress.Cycles == 0 {
		t.Errorf("progress lacks cycle/elapsed accounting: %+v", final.Progress)
	}

	// The HTTP report must be byte-identical to encoding the engine's own
	// results locally — the same canonical path cmd/regress -json uses.
	httpReport := getBytes(t, srv, "/api/v1/jobs/"+st.ID+"/report")
	results, stats, err := regress.Run([]nodespec.Config{cfg}, regress.Options{
		Tests:       suite(t, spec.Tests...),
		Seeds:       spec.Seeds,
		KernelStats: true,
		RecordWave:  true,
	})
	if err != nil {
		t.Fatal(err)
	}
	var local bytes.Buffer
	if err := regress.WriteJSON(&local, regress.BuildReport(results, stats)); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(httpReport, local.Bytes()) {
		t.Errorf("HTTP report differs from the local canonical encoding:\n%s\nvs\n%s", httpReport, local.String())
	}

	// Structured views all serve.
	var covOut struct {
		Configs []struct {
			Name           string   `json:"name"`
			FuncCovPercent float64  `json:"func_cov_percent"`
			Holes          []string `json:"holes"`
		} `json:"configs"`
	}
	getJSON(t, srv, "/api/v1/jobs/"+st.ID+"/coverage", &covOut)
	if len(covOut.Configs) != 1 || covOut.Configs[0].Name != cfg.Name || covOut.Configs[0].FuncCovPercent <= 0 {
		t.Errorf("coverage endpoint: %+v", covOut)
	}

	var alignOut struct {
		Configs []struct {
			Name         string  `json:"name"`
			MinAlignment float64 `json:"min_alignment"`
			Runs         []any   `json:"runs"`
		} `json:"configs"`
	}
	getJSON(t, srv, "/api/v1/jobs/"+st.ID+"/alignment", &alignOut)
	if len(alignOut.Configs) != 1 || alignOut.Configs[0].MinAlignment < 99 || len(alignOut.Configs[0].Runs) != units {
		t.Errorf("alignment endpoint: %+v", alignOut)
	}

	var kernOut struct {
		Configs []struct {
			Name string `json:"name"`
			View string `json:"view"`
			Runs int    `json:"runs"`
		} `json:"configs"`
	}
	getJSON(t, srv, "/api/v1/jobs/"+st.ID+"/kernelstats", &kernOut)
	if len(kernOut.Configs) != 2 { // RTL + BCA
		t.Errorf("kernelstats endpoint: want both views, got %+v", kernOut)
	}

	// Waveforms: list the units, download one, decode it.
	var waveOut struct {
		Units []string `json:"units"`
	}
	getJSON(t, srv, "/api/v1/jobs/"+st.ID+"/waves", &waveOut)
	if len(waveOut.Units) != units*2 { // each unit stores rtl + bca
		t.Fatalf("waves endpoint: %d units, want %d", len(waveOut.Units), units*2)
	}
	raw := getBytes(t, srv, "/api/v1/jobs/"+st.ID+"/wave/"+waveOut.Units[0])
	rec, err := vcd.DecodeRecording(raw)
	if err != nil {
		t.Fatalf("served .crw does not decode: %v", err)
	}
	if rec == nil {
		t.Fatal("decoded recording is nil")
	}

	// Log endpoint serves text.
	if resp, err := http.Get(srv.URL + "/api/v1/jobs/" + st.ID + "/log"); err != nil || resp.StatusCode != http.StatusOK {
		t.Errorf("log endpoint: %v %v", resp.Status, err)
	} else {
		resp.Body.Close()
	}
}

// sseStates consumes the SSE stream until a terminal event (or EOF) and
// reports whether a terminal state was seen.
func sseStates(t *testing.T, srv *httptest.Server, id string) bool {
	t.Helper()
	resp, err := http.Get(srv.URL + "/api/v1/jobs/" + id + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("events content type %q", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var st jobs.Status
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &st); err != nil {
			t.Fatalf("bad SSE frame %q: %v", line, err)
		}
		if st.ID != id {
			t.Fatalf("SSE frame for job %s on stream %s", st.ID, id)
		}
		if st.State.Terminal() {
			return true
		}
	}
	return false
}

func suite(t *testing.T, names ...string) []core.Test {
	t.Helper()
	var tests []core.Test
	for _, name := range names {
		tc, err := testcases.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		tests = append(tests, tc)
	}
	return tests
}

// TestServiceDuplicateJobs is the shared-store dedupe criterion over HTTP: a
// sequential resubmission simulates zero units, and two jobs submitted
// concurrently split every unit between them exactly once.
func TestServiceDuplicateJobs(t *testing.T) {
	srv, _ := newTestServer(t)
	spec := jobs.Spec{
		Configs: []string{regress.FormatConfig(testCfg(t, "dup0"))},
		Tests:   []string{"basic_write_read", "error_paths", "random_mixed"},
		Seeds:   []int64{1},
	}
	units := 3

	// Concurrent identical jobs on a cold cache: the flight group must make
	// them simulate each unit exactly once between them.
	a := postJob(t, srv, spec)
	b := postJob(t, srv, spec)
	finalA := pollDone(t, srv, a.ID)
	finalB := pollDone(t, srv, b.ID)
	for _, st := range []jobs.Status{finalA, finalB} {
		if st.State != jobs.Done {
			t.Fatalf("job %s ended %s (%s)", st.ID, st.State, st.Error)
		}
		if st.Progress.Ran+st.Progress.Cached != units {
			t.Errorf("job %s covered %d units, want %d", st.ID, st.Progress.Ran+st.Progress.Cached, units)
		}
	}
	if ran := finalA.Progress.Ran + finalB.Progress.Ran; ran != units {
		t.Errorf("concurrent duplicate jobs simulated %d units total, want exactly %d", ran, units)
	}

	// Sequential resubmission: everything is already stored.
	c := postJob(t, srv, spec)
	finalC := pollDone(t, srv, c.ID)
	if finalC.State != jobs.Done {
		t.Fatalf("job %s ended %s (%s)", c.ID, finalC.State, finalC.Error)
	}
	if finalC.Progress.Ran != 0 || finalC.Progress.Cached != units {
		t.Errorf("resubmitted job simulated %d units, want 0 (all %d cached)", finalC.Progress.Ran, units)
	}
}

// TestServiceErrors covers the client-error surface.
func TestServiceErrors(t *testing.T) {
	srv, _ := newTestServer(t)

	for path, want := range map[string]int{
		"/api/v1/jobs/nope":        http.StatusNotFound,
		"/api/v1/jobs/nope/report": http.StatusNotFound,
		"/api/v1/jobs/nope/waves":  http.StatusNotFound,
	} {
		if resp, err := http.Get(srv.URL + path); err != nil {
			t.Fatal(err)
		} else {
			resp.Body.Close()
			if resp.StatusCode != want {
				t.Errorf("GET %s: %d, want %d", path, resp.StatusCode, want)
			}
		}
	}

	for name, body := range map[string]string{
		"unknown field":     `{"matrx": true}`,
		"quick sans matrix": `{"quick": true}`,
		"empty spec":        `{}`,
		"unknown test":      fmt.Sprintf(`{"configs": [%q], "tests": ["nope"]}`, regress.FormatConfig(testCfg(t, "er0"))),
	} {
		resp, err := http.Post(srv.URL+"/api/v1/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: POST /jobs returned %d, want 400", name, resp.StatusCode)
		}
	}

	// Results of an unfinished job are a conflict, not a panic: submit and
	// immediately ask for the report (the job is queued or running).
	st := postJob(t, srv, jobs.Spec{
		Configs: []string{regress.FormatConfig(testCfg(t, "er1"))},
		Tests:   []string{"basic_write_read"},
	})
	resp, err := http.Get(srv.URL + "/api/v1/jobs/" + st.ID + "/report")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict && resp.StatusCode != http.StatusOK {
		t.Errorf("report on unfinished job: %d, want 409 (or 200 if it already finished)", resp.StatusCode)
	}
	pollDone(t, srv, st.ID)

	// Version and tests are always served.
	var ver struct {
		CodeVersion string `json:"code_version"`
	}
	getJSON(t, srv, "/api/v1/version", &ver)
	if ver.CodeVersion == "" {
		t.Error("version endpoint returned nothing")
	}
	var tl struct {
		Tests []string `json:"tests"`
	}
	getJSON(t, srv, "/api/v1/tests", &tl)
	if len(tl.Tests) != 12 {
		t.Errorf("tests endpoint listed %d tests, want 12", len(tl.Tests))
	}
}

// TestServiceCancelOverHTTP: POST .../cancel moves a running job to
// cancelled.
func TestServiceCancelOverHTTP(t *testing.T) {
	srv, _ := newTestServer(t)
	st := postJob(t, srv, jobs.Spec{
		Configs: []string{regress.FormatConfig(testCfg(t, "cx0"))},
		Seeds:   []int64{1, 2, 3}, // all 12 tests, 3 seeds: enough to catch mid-run
	})
	resp, err := http.Post(srv.URL+"/api/v1/jobs/"+st.ID+"/cancel", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel: %d", resp.StatusCode)
	}
	final := pollDone(t, srv, st.ID)
	if final.State != jobs.Cancelled && final.State != jobs.Done {
		t.Fatalf("cancelled job ended %s, want cancelled (or done if it outran the cancel)", final.State)
	}
}
