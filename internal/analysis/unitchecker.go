package analysis

import (
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"go/version"
	"io"
	"log"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// vetConfig mirrors the JSON configuration file the go command writes for
// each package when running `go vet -vettool=...` (cmd/go/internal/work's
// vetConfig). Field names are part of the vet command-line protocol.
type vetConfig struct {
	ID           string
	Compiler     string
	Dir          string
	ImportPath   string
	GoVersion    string
	GoFiles      []string
	NonGoFiles   []string
	IgnoredFiles []string

	ImportMap   map[string]string
	PackageFile map[string]string
	Standard    map[string]bool

	PackageVetx map[string]string
	VetxOnly    bool
	VetxOutput  string

	SucceedOnTypecheckFailure bool
}

// Main is the entry point of a vettool binary (cmd/crvevet): it implements
// the (unpublished) vet command-line protocol the go command speaks to the
// tool named by `go vet -vettool`:
//
//	tool -V=full          print a version line for the build cache
//	tool -flags           print the tool's flags as JSON
//	tool [flags] vet.cfg  analyze the package described by the JSON config
//
// The protocol and behavior follow x/tools' unitchecker, rebuilt on the
// standard library. Diagnostics go to stderr as file:line:col: messages and
// the tool exits 2, which `go vet` reports as the package failing vet.
func Main(analyzers ...*Analyzer) {
	progname := filepath.Base(os.Args[0])
	log.SetFlags(0)
	log.SetPrefix(progname + ": ")

	printflags := flag.Bool("flags", false, "print analyzer flags in JSON")
	v := flag.String("V", "", "print version and exit (-V=full for the build cache)")
	enabled := map[string]*bool{}
	for _, a := range analyzers {
		name := a.Name
		if _, dup := enabled[name]; dup {
			log.Fatalf("duplicate analyzer name %q", name)
		}
		enabled[name] = flag.Bool(name, true, a.Doc)
	}
	flag.Parse()

	switch {
	case *v != "":
		// The go command parses this exact shape (see work.Builder.toolID):
		// name, "version", and for devel builds a trailing buildID field.
		fmt.Printf("%s version devel comments-go-here buildID=devel\n", progname)
		return
	case *printflags:
		printFlagsJSON(os.Stdout)
		return
	}

	if flag.NArg() != 1 || !strings.HasSuffix(flag.Arg(0), ".cfg") {
		log.Fatalf(`invoked directly; this tool is driven by the go command:
	go vet -vettool=%s ./...`, os.Args[0])
	}

	var active []*Analyzer
	for _, a := range analyzers {
		if *enabled[a.Name] {
			active = append(active, a)
		}
	}
	os.Exit(runVet(flag.Arg(0), active))
}

// printFlagsJSON emits the registered flags in the JSON shape
// cmd/go/internal/vet expects from `tool -flags`.
func printFlagsJSON(w io.Writer) {
	type jsonFlag struct {
		Name  string
		Bool  bool
		Usage string
	}
	var out []jsonFlag
	flag.VisitAll(func(f *flag.Flag) {
		isBool := false
		if b, ok := f.Value.(interface{ IsBoolFlag() bool }); ok {
			isBool = b.IsBoolFlag()
		}
		out = append(out, jsonFlag{Name: f.Name, Bool: isBool, Usage: f.Usage})
	})
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	data, err := json.Marshal(out)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(w, "%s\n", data)
}

// runVet analyzes one package per the vet.cfg protocol file and returns the
// process exit code.
func runVet(cfgPath string, analyzers []*Analyzer) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		log.Fatal(err)
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		log.Fatalf("cannot decode JSON config file %s: %v", cfgPath, err)
	}

	// Our analyzers exchange no facts between packages, so dependency-only
	// invocations (VetxOnly) need no work beyond producing the (empty)
	// facts file the go command caches.
	if cfg.VetxOnly {
		writeVetx(cfg)
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				writeVetx(cfg)
				return 0
			}
			log.Fatal(err)
		}
		files = append(files, f)
	}

	tc := &types.Config{
		Importer: importer.ForCompiler(fset, cfg.Compiler, func(importPath string) (io.ReadCloser, error) {
			if p, ok := cfg.ImportMap[importPath]; ok {
				importPath = p
			}
			file, ok := cfg.PackageFile[importPath]
			if !ok {
				return nil, fmt.Errorf("no export data for %q", importPath)
			}
			return os.Open(file)
		}),
		Sizes: types.SizesFor(cfg.Compiler, goarch()),
	}
	if lang := version.Lang(cfg.GoVersion); lang != "" {
		tc.GoVersion = lang
	}
	info := NewInfo()
	pkg, err := tc.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			writeVetx(cfg)
			return 0
		}
		log.Fatalf("typecheck %s: %v", cfg.ImportPath, err)
	}

	diags, err := Run(analyzers, fset, files, pkg, info)
	if err != nil {
		log.Fatal(err)
	}
	writeVetx(cfg)
	if len(diags) == 0 {
		return 0
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s\n", fset.Position(d.Pos), d.Message)
	}
	return 2
}

// writeVetx writes the (empty) serialized-facts output the go command
// expects every vet invocation to produce, so results cache across builds.
func writeVetx(cfg vetConfig) {
	if cfg.VetxOutput == "" {
		return
	}
	if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
		log.Fatalf("write facts: %v", err)
	}
}

// goarch returns the architecture the package is being vetted for: the
// go command forwards GOARCH in the environment when cross-compiling.
func goarch() string {
	if a := os.Getenv("GOARCH"); a != "" {
		return a
	}
	return runtime.GOARCH
}
