// Package analysis is the Go-invariant layer of the repo's static-analysis
// subsystem (the configuration layer lives in internal/lint): custom
// analyzers that encode invariants of THIS codebase — conventions the
// compiler cannot check and code review keeps re-litigating — and a driver
// speaking the `go vet -vettool` command-line protocol so the analyzers run
// in CI exactly like the standard vet suite.
//
// The framework mirrors the shape of golang.org/x/tools/go/analysis
// (Analyzer / Pass / Diagnostic) but is built on the standard library only:
// the container bakes no module cache, so x/tools cannot be fetched. If the
// dependency ever becomes available the analyzers port over mechanically.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Diagnostic is one finding, positioned inside the package under analysis.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}

// Pass carries one package's syntax and type information through an
// analyzer run, mirroring x/tools' analysis.Pass.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	report func(Diagnostic)
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{Pos: pos, Analyzer: p.Analyzer.Name, Message: fmt.Sprintf(format, args...)})
}

// Analyzer is one named invariant check.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
}

// Run executes the analyzers over one type-checked package and returns the
// diagnostics in reporting order.
func Run(analyzers []*Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
			report:    func(d Diagnostic) { diags = append(diags, d) },
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analyzer %s: %w", a.Name, err)
		}
	}
	return diags, nil
}

// NewInfo returns a types.Info with every map the analyzers consult
// allocated.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
}

// isNamed reports whether t (after unaliasing) is the named type
// pkgPath.name, e.g. isNamed(t, "crve/internal/nodespec", "Config").
func isNamed(t types.Type, pkgPath, name string) bool {
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath && obj.Name() == name
}
