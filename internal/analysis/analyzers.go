package analysis

import (
	"bytes"
	"go/ast"
	"go/constant"
	"go/printer"
	"go/token"
	"go/types"
	"strings"
)

const (
	nodespecPath = "crve/internal/nodespec"
	stbusPath    = "crve/internal/stbus"
	simPath      = "crve/internal/sim"
	rtlPath      = "crve/internal/rtl"
	bcaPath      = "crve/internal/bca"
)

// Analyzers returns every repo-invariant analyzer, in stable order. This is
// the set cmd/crvevet serves to `go vet -vettool`.
func Analyzers() []*Analyzer {
	return []*Analyzer{Bindcheck, ConfigLiteral, PortWidth, SignalRead}
}

// ConfigLiteral flags a nodespec.Config composite literal passed directly
// as a call argument. The repo convention is to normalise a hand-built
// configuration with WithDefaults() at the construction site, so the value
// every layer sees (constructors, lint, reports) is the same one; a raw
// literal slips through today only because each constructor re-normalises
// defensively.
var ConfigLiteral = &Analyzer{
	Name: "configliteral",
	Doc: "flag nodespec.Config literals passed to a call without WithDefaults(): " +
		"normalise the configuration where it is built, not inside every consumer",
	Run: runConfigLiteral,
}

func runConfigLiteral(pass *Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			for _, arg := range call.Args {
				lit, ok := arg.(*ast.CompositeLit)
				if !ok {
					continue
				}
				if isNamed(pass.TypesInfo.Types[lit].Type, nodespecPath, "Config") {
					pass.Reportf(lit.Pos(),
						"nodespec.Config literal passed directly to %s: append .WithDefaults() so the configuration is normalised once, at the construction site",
						exprString(pass.Fset, call.Fun))
				}
			}
			return true
		})
	}
	return nil
}

// PortWidth flags stbus.PortConfig literals that flow into a port (as a
// call argument or a Port/Up/Down field of a larger config literal) without
// a usable data width: PortConfig.WithDefaults fills AddrBits but
// deliberately NOT DataBits, so stbus.NewPort panics at elaboration. A
// missing DataBits field, or a constant width that is not a power of two in
// 8..256, is a guaranteed panic the compiler cannot see.
var PortWidth = &Analyzer{
	Name: "portwidth",
	Doc: "flag stbus.PortConfig literals used to build ports without a legal DataBits: " +
		"WithDefaults leaves DataBits zero and NewPort panics at elaboration " +
		"(test files are exempt: they construct illegal configs on purpose to exercise Validate)",
	Run: runPortWidth,
}

func runPortWidth(pass *Pass) error {
	for _, file := range pass.Files {
		if strings.HasSuffix(pass.Fset.Position(file.Package).Filename, "_test.go") {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				for _, arg := range n.Args {
					checkPortLiteral(pass, arg)
				}
			case *ast.CompositeLit:
				for _, elt := range n.Elts {
					if kv, ok := elt.(*ast.KeyValueExpr); ok {
						checkPortLiteral(pass, kv.Value)
					} else {
						checkPortLiteral(pass, elt)
					}
				}
			}
			return true
		})
	}
	return nil
}

// legalWidths is the DataBits domain of stbus.PortConfig.Validate.
var legalWidths = map[int64]bool{8: true, 16: true, 32: true, 64: true, 128: true, 256: true}

func checkPortLiteral(pass *Pass, expr ast.Expr) {
	lit, ok := expr.(*ast.CompositeLit)
	if !ok || len(lit.Elts) == 0 {
		// An empty PortConfig{} is the zero value, conventionally used as
		// "unset"; only a literal that sets SOME fields but no width is a
		// construction-site bug.
		return
	}
	if !isNamed(pass.TypesInfo.Types[lit].Type, stbusPath, "PortConfig") {
		return
	}
	width, found := dataBitsOf(pass, lit)
	if !found {
		pass.Reportf(lit.Pos(),
			"stbus.PortConfig literal sets no DataBits: WithDefaults leaves it 0 and NewPort panics at elaboration")
		return
	}
	if width != nil && !legalWidths[*width] {
		pass.Reportf(lit.Pos(),
			"stbus.PortConfig literal sets DataBits to %d, which is not a legal bus width (8..256, power of two): NewPort panics at elaboration", *width)
	}
}

// dataBitsOf locates the DataBits field of a PortConfig literal. It returns
// found=false when the field is absent, and a nil width when the field is
// set to a non-constant expression (which the analyzer cannot judge).
func dataBitsOf(pass *Pass, lit *ast.CompositeLit) (width *int64, found bool) {
	constWidth := func(e ast.Expr) *int64 {
		tv := pass.TypesInfo.Types[e]
		if tv.Value == nil || tv.Value.Kind() != constant.Int {
			return nil
		}
		v, ok := constant.Int64Val(tv.Value)
		if !ok {
			return nil
		}
		return &v
	}
	for i, elt := range lit.Elts {
		kv, ok := elt.(*ast.KeyValueExpr)
		if !ok {
			// Positional literal: DataBits is the second field of
			// stbus.PortConfig{Type, DataBits, AddrBits, Endian}.
			if i == 1 {
				return constWidth(elt), true
			}
			continue
		}
		if key, ok := kv.Key.(*ast.Ident); ok && key.Name == "DataBits" {
			return constWidth(kv.Value), true
		}
	}
	return nil, false
}

// SignalRead flags sim.Signal value reads (Get / U64 / Bool) performed at
// elaboration time: directly in the body of a function that registers
// simulation processes (Seq / Comb / AtCycleEnd), before the simulator has
// run. A signal has no settled value until Run/Step executes the processes,
// so an elaboration-time read always sees the zero value — the read belongs
// inside the process callback. Reads that occur lexically after a
// Run/RunUntil/Step call in the same function are result inspection and are
// fine; so are reads in helper functions that register nothing (they execute
// inside somebody else's callback).
var SignalRead = &Analyzer{
	Name: "signalread",
	Doc: "flag sim.Signal reads outside a process callback: a function that registers " +
		"Seq/Comb/AtCycleEnd processes must not read signal values before the simulator " +
		"runs — the value is not settled until the callbacks execute",
	Run: runSignalRead,
}

func runSignalRead(pass *Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					checkElaborationScope(pass, n.Body)
				}
			case *ast.FuncLit:
				checkElaborationScope(pass, n.Body)
			}
			return true
		})
	}
	return nil
}

// checkElaborationScope examines one function body at nesting depth zero:
// nested function literals are process callbacks (or at least deferred
// execution) and are skipped here — each gets its own scope check from the
// outer walk.
func checkElaborationScope(pass *Pass, body *ast.BlockStmt) {
	type read struct {
		pos    token.Pos
		method string
	}
	var reads []read
	registers := token.NoPos // first Seq/Comb/AtCycleEnd registration
	firstRun := token.NoPos  // first Run/RunUntil/Step, if any
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		recv := pass.TypesInfo.Types[sel.X].Type
		if recv == nil {
			return true
		}
		if p, ok := types.Unalias(recv).(*types.Pointer); ok {
			recv = p.Elem()
		}
		switch sel.Sel.Name {
		case "Seq", "Comb", "AtCycleEnd":
			if isNamed(recv, simPath, "Scope") || isNamed(recv, simPath, "Simulator") {
				if !registers.IsValid() {
					registers = call.Pos()
				}
			}
		case "Run", "RunUntil", "Step":
			if isNamed(recv, simPath, "Simulator") && !firstRun.IsValid() {
				firstRun = call.Pos()
			}
		case "Get", "U64", "Bool":
			// Scope.Bool / Simulator.Bool construct a signal; only the
			// Signal receiver is a value read.
			if isNamed(recv, simPath, "Signal") {
				reads = append(reads, read{call.Pos(), sel.Sel.Name})
			}
		}
		return true
	})
	if !registers.IsValid() {
		return
	}
	for _, r := range reads {
		if firstRun.IsValid() && r.pos > firstRun {
			continue // inspecting results after the simulator ran
		}
		pass.Reportf(r.pos,
			"sim.Signal.%s read at elaboration time: this function registers processes, and the signal has no settled value until the simulator runs — move the read into the process callback",
			r.method)
	}
}

// exprString renders a call target for a diagnostic message.
func exprString(fset *token.FileSet, e ast.Expr) string {
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, fset, e); err != nil {
		return "call"
	}
	return buf.String()
}
