package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// The analyzers key on the import paths of the real repo packages; the test
// fixtures are tiny stand-ins typechecked under those paths.
const stubStbus = `package stbus
import "crve/internal/sim"
type Type int
type Endianness int
const (
	Type1 Type = 1
	Type2 Type = 2
	Type3 Type = 3
)
const (
	LittleEndian Endianness = 0
	BigEndian    Endianness = 1
)
type PortConfig struct {
	Type     Type
	DataBits int
	AddrBits int
	Endian   Endianness
}
func (c PortConfig) WithDefaults() PortConfig { return c }
type Port struct {
	Cfg  PortConfig
	Name string
}
func NewPort(sc sim.Scope, name string, cfg PortConfig) *Port { return &Port{Cfg: cfg, Name: name} }
func Bind(sm *sim.Simulator, initSide, tgtSide *Port)         {}
`

const stubRtl = `package rtl
import (
	"crve/internal/nodespec"
	"crve/internal/sim"
	"crve/internal/stbus"
)
type NodeConfig = nodespec.Config
type Node struct {
	Cfg  NodeConfig
	Init []*stbus.Port
	Tgt  []*stbus.Port
}
func NewNode(sc sim.Scope, cfg NodeConfig) (*Node, error) { return &Node{}, nil }
type ConverterConfig struct {
	Name     string
	Up, Down stbus.PortConfig
	Pipe     int
}
type Converter struct {
	Cfg      ConverterConfig
	Up, Down *stbus.Port
}
func NewConverter(sc sim.Scope, cfg ConverterConfig) (*Converter, error) { return &Converter{}, nil }
func NewSizeConverter(sc sim.Scope, name string, up stbus.PortConfig, downBits int) (*Converter, error) {
	return &Converter{}, nil
}
func NewTypeConverter(sc sim.Scope, name string, up stbus.PortConfig, downType stbus.Type) (*Converter, error) {
	return &Converter{}, nil
}
type MemoryConfig struct {
	Name       string
	Port       stbus.PortConfig
	Base, Size uint64
	Latency    int
}
type Memory struct {
	Cfg  MemoryConfig
	Port *stbus.Port
}
func NewMemory(sc sim.Scope, cfg MemoryConfig) (*Memory, error) { return &Memory{}, nil }
type RegDecoderConfig struct {
	Name    string
	Port    stbus.PortConfig
	Base    uint64
	NumRegs int
}
type RegDecoder struct {
	Cfg  RegDecoderConfig
	Port *stbus.Port
}
func NewRegDecoder(sc sim.Scope, cfg RegDecoderConfig) (*RegDecoder, error) { return &RegDecoder{}, nil }
`

const stubNodespec = `package nodespec
import "crve/internal/stbus"
type Config struct {
	Name            string
	Port            stbus.PortConfig
	NumInit, NumTgt int
}
func (c Config) WithDefaults() Config { return c }
func (c Config) Validate() error      { return nil }
`

const stubSim = `package sim
type Bits struct{ w uint64 }
func (b Bits) Uint64() uint64 { return b.w }
type Signal struct{ cur Bits }
func (s *Signal) Get() Bits       { return s.cur }
func (s *Signal) U64() uint64     { return s.cur.Uint64() }
func (s *Signal) Bool() bool      { return false }
func (s *Signal) Set(v Bits)      {}
func (s *Signal) SetU64(v uint64) {}
func (s *Signal) SetBool(v bool)  {}
type Simulator struct{}
func New() *Simulator                                                     { return &Simulator{} }
func (sm *Simulator) Signal(name string, width int) *Signal               { return &Signal{} }
func (sm *Simulator) Bool(name string) *Signal                            { return &Signal{} }
func (sm *Simulator) Seq(name string, fn func())                          {}
func (sm *Simulator) Comb(name string, fn func(), sensitivity ...*Signal) {}
func (sm *Simulator) AtCycleEnd(fn func())                                {}
func (sm *Simulator) Run(n int) error                                     { return nil }
func (sm *Simulator) RunUntil(done func() bool, limit int) error          { return nil }
func (sm *Simulator) Step() error                                         { return nil }
type Scope struct{ sm *Simulator }
func (sm *Simulator) Root() Scope                                     { return Scope{sm} }
func (sc Scope) Signal(name string, width int) *Signal                { return &Signal{} }
func (sc Scope) Bool(name string) *Signal                             { return &Signal{} }
func (sc Scope) Seq(name string, fn func())                           {}
func (sc Scope) Comb(name string, fn func(), sensitivity ...*Signal)  {}
`

// mapImporter resolves imports from packages already typechecked in the
// test.
type mapImporter map[string]*types.Package

func (m mapImporter) Import(path string) (*types.Package, error) {
	if pkg, ok := m[path]; ok {
		return pkg, nil
	}
	return nil, fmt.Errorf("test importer: unknown package %q", path)
}

// check typechecks one source file as package path and returns everything an
// analyzer pass needs.
func check(t *testing.T, imp mapImporter, path, filename, src string) (*token.FileSet, []*ast.File, *types.Package, *types.Info) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, filename, src, parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	info := NewInfo()
	pkg, err := (&types.Config{Importer: imp}).Check(path, fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatal(err)
	}
	return fset, []*ast.File{f}, pkg, info
}

// stubs typechecks the stand-in stbus and nodespec packages.
func stubs(t *testing.T) mapImporter {
	t.Helper()
	imp := mapImporter{}
	fset := token.NewFileSet()
	for _, p := range []struct{ path, src string }{
		{"crve/internal/sim", stubSim},
		{"crve/internal/stbus", stubStbus},
		{"crve/internal/nodespec", stubNodespec},
		{"crve/internal/rtl", stubRtl},
	} {
		f, err := parser.ParseFile(fset, p.path+"/stub.go", p.src, parser.SkipObjectResolution)
		if err != nil {
			t.Fatal(err)
		}
		pkg, err := (&types.Config{Importer: imp}).Check(p.path, fset, []*ast.File{f}, nil)
		if err != nil {
			t.Fatal(err)
		}
		imp[p.path] = pkg
	}
	return imp
}

// runOn runs one analyzer over a client source file and returns the
// diagnostic messages with line numbers.
func runOn(t *testing.T, a *Analyzer, filename, src string) []string {
	t.Helper()
	fset, files, pkg, info := check(t, stubs(t), "crve/example/client", filename, src)
	diags, err := Run([]*Analyzer{a}, fset, files, pkg, info)
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	for _, d := range diags {
		out = append(out, fmt.Sprintf("%d: %s", fset.Position(d.Pos).Line, d.Message))
	}
	return out
}

func TestConfigLiteralFlagsRawLiteralArgument(t *testing.T) {
	src := `package client
import "crve/internal/nodespec"
func build(cfg nodespec.Config) error { return cfg.Validate() }
func bad() {
	build(nodespec.Config{Name: "raw"}) // line 5: flagged
}
func good() {
	build(nodespec.Config{Name: "ok"}.WithDefaults())
	cfg := nodespec.Config{Name: "var"}
	build(cfg.WithDefaults())
}
`
	got := runOn(t, ConfigLiteral, "client.go", src)
	if len(got) != 1 || !strings.HasPrefix(got[0], "5: ") {
		t.Fatalf("want exactly one finding on line 5, got %v", got)
	}
	if !strings.Contains(got[0], "WithDefaults") || !strings.Contains(got[0], "build") {
		t.Errorf("message should name the call and the fix: %v", got[0])
	}
}

func TestPortWidthFlagsMissingAndBadWidths(t *testing.T) {
	src := `package client
import (
	"crve/internal/nodespec"
	"crve/internal/stbus"
)
func newPort(cfg stbus.PortConfig) {}
func bad() {
	newPort(stbus.PortConfig{Type: stbus.Type3})                 // line 8: no DataBits
	newPort(stbus.PortConfig{Type: stbus.Type3, DataBits: 24})   // line 9: bad width
	_ = nodespec.Config{Port: stbus.PortConfig{Type: stbus.Type2}} // line 10: field value, no DataBits
	newPort(stbus.PortConfig{stbus.Type2, 12, 32, 0})            // line 11: positional, bad width
}
func good() {
	newPort(stbus.PortConfig{Type: stbus.Type3, DataBits: 32})
	_ = nodespec.Config{Port: stbus.PortConfig{Type: stbus.Type2, DataBits: 64}}
	newPort(stbus.PortConfig{}.WithDefaults()) // empty literal = deliberate zero value
	w := 24
	newPort(stbus.PortConfig{Type: stbus.Type3, DataBits: w}) // non-constant: not judged
}
`
	got := runOn(t, PortWidth, "client.go", src)
	if len(got) != 4 {
		t.Fatalf("want 4 findings, got %d: %v", len(got), got)
	}
	for i, line := range []string{"8: ", "9: ", "10: ", "11: "} {
		if !strings.HasPrefix(got[i], line) {
			t.Errorf("finding %d on wrong line: %v", i, got[i])
		}
	}
}

func TestPortWidthSkipsTestFiles(t *testing.T) {
	src := `package client
import "crve/internal/stbus"
func newPort(cfg stbus.PortConfig) {}
func deliberatelyBad() {
	newPort(stbus.PortConfig{Type: stbus.Type2, DataBits: 7}) // exercising the panic path
}
`
	if got := runOn(t, PortWidth, "client_test.go", src); len(got) != 0 {
		t.Fatalf("portwidth must not fire in _test.go files, got %v", got)
	}
}

func TestSignalReadFlagsElaborationReads(t *testing.T) {
	src := `package client
import "crve/internal/sim"
func elaborate(sm *sim.Simulator) {
	d := sm.Signal("d", 8)
	q := sm.Signal("q", 8)
	if d.Bool() { // line 6: read before the simulator has run
		return
	}
	sm.Seq("reg", func() { q.Set(d.Get()) }) // callback read: fine
	_ = q.U64() // line 10: elaboration read, value not settled
}
`
	got := runOn(t, SignalRead, "client.go", src)
	if len(got) != 2 {
		t.Fatalf("want 2 findings, got %d: %v", len(got), got)
	}
	for i, line := range []string{"6: ", "10: "} {
		if !strings.HasPrefix(got[i], line) {
			t.Errorf("finding %d on wrong line: %v", i, got[i])
		}
	}
	if !strings.Contains(got[0], "Bool") || !strings.Contains(got[1], "U64") {
		t.Errorf("messages should name the read method: %v", got)
	}
}

func TestSignalReadFlagsScopeRegistration(t *testing.T) {
	src := `package client
import "crve/internal/sim"
func build(sc sim.Scope) {
	req := sc.Bool("req") // constructor, not a read
	gnt := sc.Bool("gnt")
	sc.Comb("grant", func() { gnt.SetBool(req.Bool()) }, req)
	if gnt.Bool() { // line 7: elaboration read under a Scope registration
		panic("unsettled")
	}
}
`
	got := runOn(t, SignalRead, "client.go", src)
	if len(got) != 1 || !strings.HasPrefix(got[0], "7: ") {
		t.Fatalf("want exactly one finding on line 7, got %v", got)
	}
}

func TestSignalReadAllowsReadsAfterRun(t *testing.T) {
	src := `package client
import "crve/internal/sim"
func simulate() uint64 {
	sm := sim.New()
	d := sm.Signal("d", 8)
	q := sm.Signal("q", 8)
	sm.Seq("reg", func() { q.Set(d.Get()) })
	if err := sm.Run(10); err != nil {
		return 0
	}
	return q.U64() // settled: the simulator has run
}
`
	if got := runOn(t, SignalRead, "client.go", src); len(got) != 0 {
		t.Fatalf("reads after Run must not be flagged, got %v", got)
	}
}

func TestSignalReadIgnoresHelpersWithoutRegistration(t *testing.T) {
	src := `package client
import "crve/internal/sim"
func fire(req, gnt *sim.Signal) bool { return req.Bool() && gnt.Bool() }
func watch(sm *sim.Simulator, q *sim.Signal) {
	sm.AtCycleEnd(func() {
		_ = q.U64() // inside the callback: fine
	})
}
`
	if got := runOn(t, SignalRead, "client.go", src); len(got) != 0 {
		t.Fatalf("helpers that register nothing must not be flagged, got %v", got)
	}
}

// bindcheckFixture is the seeded mismatched-Bind elaboration: it mirrors the
// examples/interconnect idiom (config vars, node + converter + memory
// construction) and contains exactly two provably bad Bind calls.
const bindcheckFixture = `package client
import (
	"crve/internal/nodespec"
	"crve/internal/rtl"
	"crve/internal/sim"
	"crve/internal/stbus"
)
func elaborate() {
	sm := sim.New()
	root := sm.Root()
	p32 := stbus.PortConfig{Type: stbus.Type3, DataBits: 32}.WithDefaults()
	p64 := stbus.PortConfig{Type: stbus.Type3, DataBits: 64}.WithDefaults()
	node, _ := rtl.NewNode(root, nodespec.Config{Name: "n", Port: p32, NumInit: 2, NumTgt: 2}.WithDefaults())
	cpu := stbus.NewPort(root, "cpu", p64)
	stbus.Bind(sm, cpu, node.Init[0]) // line 15: data_bits 64 vs 32
	conv, _ := rtl.NewSizeConverter(root, "sz", p64, 32)
	stbus.Bind(sm, stbus.NewPort(root, "dsp", p64), conv.Up) // clean: both 64
	stbus.Bind(sm, conv.Down, node.Init[1])                  // clean: both 32
	mem, _ := rtl.NewMemory(root, rtl.MemoryConfig{Name: "m", Port: p32, Base: 0, Size: 4096})
	stbus.Bind(sm, node.Tgt[0], mem.Port) // clean
	p32t2 := p32
	p32t2.Type = stbus.Type2
	regs, _ := rtl.NewRegDecoder(root, rtl.RegDecoderConfig{Name: "r", Port: p32t2, Base: 0, NumRegs: 8})
	stbus.Bind(sm, node.Tgt[1], regs.Port) // line 24: type T3 vs T2
}
`

func TestBindcheckFlagsMismatchedBinds(t *testing.T) {
	got := runOn(t, Bindcheck, "client.go", bindcheckFixture)
	if len(got) != 2 {
		t.Fatalf("want exactly 2 findings, got %d: %v", len(got), got)
	}
	if !strings.HasPrefix(got[0], "15: ") || !strings.Contains(got[0], "data_bits 64 vs 32") {
		t.Errorf("finding 0 should be the width mismatch on line 15: %v", got[0])
	}
	if !strings.HasPrefix(got[1], "24: ") || !strings.Contains(got[1], "type T3 vs T2") {
		t.Errorf("finding 1 should be the type mismatch on line 24: %v", got[1])
	}
	for _, msg := range got {
		if !strings.Contains(msg, "panics at elaboration") {
			t.Errorf("message should say why this matters: %v", msg)
		}
	}
}

func TestBindcheckSkipsTestFiles(t *testing.T) {
	if got := runOn(t, Bindcheck, "client_test.go", bindcheckFixture); len(got) != 0 {
		t.Fatalf("bindcheck must not fire in _test.go files (they exercise the panic path), got %v", got)
	}
}

func TestBindcheckTracksConvertersAndCopies(t *testing.T) {
	src := `package client
import (
	"crve/internal/rtl"
	"crve/internal/sim"
	"crve/internal/stbus"
)
func elaborate(sm *sim.Simulator, root sim.Scope) {
	p32 := stbus.PortConfig{Type: stbus.Type3, DataBits: 32}
	ty, _ := rtl.NewTypeConverter(root, "ty", p32, stbus.Type2)
	down := ty.Down // copied port reference keeps its bundle
	stbus.Bind(sm, down, stbus.NewPort(root, "t3", p32)) // line 11: type T2 vs T3
	full, _ := rtl.NewConverter(root, rtl.ConverterConfig{
		Name: "c",
		Up:   stbus.PortConfig{Type: stbus.Type3, DataBits: 64},
		Down: p32,
	})
	stbus.Bind(sm, full.Up, stbus.NewPort(root, "u64", stbus.PortConfig{Type: stbus.Type3, DataBits: 64})) // clean
	stbus.Bind(sm, full.Down, stbus.NewPort(root, "big", stbus.PortConfig{
		Type: stbus.Type3, DataBits: 32, Endian: stbus.BigEndian,
	})) // line 18: endian little vs big
}
`
	got := runOn(t, Bindcheck, "client.go", src)
	if len(got) != 2 {
		t.Fatalf("want 2 findings, got %d: %v", len(got), got)
	}
	if !strings.HasPrefix(got[0], "11: ") || !strings.Contains(got[0], "type T2 vs T3") {
		t.Errorf("finding 0 should be the converter-down type mismatch: %v", got[0])
	}
	if !strings.HasPrefix(got[1], "18: ") || !strings.Contains(got[1], "endian little vs big") {
		t.Errorf("finding 1 should be the endian mismatch: %v", got[1])
	}
}

func TestBindcheckStaysSilentWhenProvenanceIsUnknown(t *testing.T) {
	src := `package client
import (
	"crve/internal/sim"
	"crve/internal/stbus"
)
func width() int { return 64 }
func elaborate(sm *sim.Simulator, root sim.Scope, ext *stbus.Port) {
	p32 := stbus.PortConfig{Type: stbus.Type3, DataBits: 32}
	wide := stbus.PortConfig{Type: stbus.Type3, DataBits: width()} // non-constant field
	stbus.Bind(sm, stbus.NewPort(root, "a", wide), stbus.NewPort(root, "b", p32))
	stbus.Bind(sm, ext, stbus.NewPort(root, "c", p32)) // parameter: unknown
	q := p32
	q = mystery()
	stbus.Bind(sm, stbus.NewPort(root, "d", q), stbus.NewPort(root, "e", p32)) // reassigned: unknown
}
func mystery() stbus.PortConfig { return stbus.PortConfig{} }
`
	if got := runOn(t, Bindcheck, "client.go", src); len(got) != 0 {
		t.Fatalf("unknown provenance must never be reported, got %v", got)
	}
}

func TestAnalyzersAreRegistered(t *testing.T) {
	names := map[string]bool{}
	for _, a := range Analyzers() {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %+v incomplete", a)
		}
		if names[a.Name] {
			t.Errorf("duplicate analyzer %s", a.Name)
		}
		names[a.Name] = true
	}
	if !names["configliteral"] || !names["portwidth"] || !names["signalread"] || !names["bindcheck"] {
		t.Errorf("expected analyzers missing: %v", names)
	}
}

func TestPrintFlagsJSONShape(t *testing.T) {
	var buf bytes.Buffer
	printFlagsJSON(&buf)
	var flags []struct {
		Name  string
		Bool  bool
		Usage string
	}
	if err := json.Unmarshal(buf.Bytes(), &flags); err != nil {
		t.Fatalf("-flags output is not the JSON shape go vet expects: %v\n%s", err, buf.String())
	}
}

// TestVettoolEndToEnd is the acceptance check for the vet protocol: build
// cmd/crvevet and let the real go command drive it over this repository.
func TestVettoolEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the tool and vets the whole repo")
	}
	goTool, err := exec.LookPath("go")
	if err != nil {
		t.Skip("go command not available")
	}
	tool := filepath.Join(t.TempDir(), "crvevet")
	build := exec.Command(goTool, "build", "-o", tool, "crve/cmd/crvevet")
	build.Dir = repoRoot(t)
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building crvevet: %v\n%s", err, out)
	}
	vet := exec.Command(goTool, "vet", "-vettool="+tool, "./...")
	vet.Dir = repoRoot(t)
	if out, err := vet.CombinedOutput(); err != nil {
		t.Fatalf("go vet -vettool reported findings or failed: %v\n%s", err, out)
	}
}

func repoRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	return filepath.Dir(filepath.Dir(dir)) // internal/analysis -> repo root
}
