package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// The analyzers key on the import paths of the real repo packages; the test
// fixtures are tiny stand-ins typechecked under those paths.
const stubStbus = `package stbus
type Type int
type Endianness int
const (
	Type1 Type = 1
	Type2 Type = 2
	Type3 Type = 3
)
type PortConfig struct {
	Type     Type
	DataBits int
	AddrBits int
	Endian   Endianness
}
func (c PortConfig) WithDefaults() PortConfig { return c }
`

const stubNodespec = `package nodespec
import "crve/internal/stbus"
type Config struct {
	Name            string
	Port            stbus.PortConfig
	NumInit, NumTgt int
}
func (c Config) WithDefaults() Config { return c }
func (c Config) Validate() error      { return nil }
`

const stubSim = `package sim
type Bits struct{ w uint64 }
func (b Bits) Uint64() uint64 { return b.w }
type Signal struct{ cur Bits }
func (s *Signal) Get() Bits       { return s.cur }
func (s *Signal) U64() uint64     { return s.cur.Uint64() }
func (s *Signal) Bool() bool      { return false }
func (s *Signal) Set(v Bits)      {}
func (s *Signal) SetU64(v uint64) {}
func (s *Signal) SetBool(v bool)  {}
type Simulator struct{}
func New() *Simulator                                                     { return &Simulator{} }
func (sm *Simulator) Signal(name string, width int) *Signal               { return &Signal{} }
func (sm *Simulator) Bool(name string) *Signal                            { return &Signal{} }
func (sm *Simulator) Seq(name string, fn func())                          {}
func (sm *Simulator) Comb(name string, fn func(), sensitivity ...*Signal) {}
func (sm *Simulator) AtCycleEnd(fn func())                                {}
func (sm *Simulator) Run(n int) error                                     { return nil }
func (sm *Simulator) RunUntil(done func() bool, limit int) error          { return nil }
func (sm *Simulator) Step() error                                         { return nil }
type Scope struct{ sm *Simulator }
func (sm *Simulator) Root() Scope                                     { return Scope{sm} }
func (sc Scope) Signal(name string, width int) *Signal                { return &Signal{} }
func (sc Scope) Bool(name string) *Signal                             { return &Signal{} }
func (sc Scope) Seq(name string, fn func())                           {}
func (sc Scope) Comb(name string, fn func(), sensitivity ...*Signal)  {}
`

// mapImporter resolves imports from packages already typechecked in the
// test.
type mapImporter map[string]*types.Package

func (m mapImporter) Import(path string) (*types.Package, error) {
	if pkg, ok := m[path]; ok {
		return pkg, nil
	}
	return nil, fmt.Errorf("test importer: unknown package %q", path)
}

// check typechecks one source file as package path and returns everything an
// analyzer pass needs.
func check(t *testing.T, imp mapImporter, path, filename, src string) (*token.FileSet, []*ast.File, *types.Package, *types.Info) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, filename, src, parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	info := NewInfo()
	pkg, err := (&types.Config{Importer: imp}).Check(path, fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatal(err)
	}
	return fset, []*ast.File{f}, pkg, info
}

// stubs typechecks the stand-in stbus and nodespec packages.
func stubs(t *testing.T) mapImporter {
	t.Helper()
	imp := mapImporter{}
	fset := token.NewFileSet()
	for _, p := range []struct{ path, src string }{
		{"crve/internal/stbus", stubStbus},
		{"crve/internal/nodespec", stubNodespec},
		{"crve/internal/sim", stubSim},
	} {
		f, err := parser.ParseFile(fset, p.path+"/stub.go", p.src, parser.SkipObjectResolution)
		if err != nil {
			t.Fatal(err)
		}
		pkg, err := (&types.Config{Importer: imp}).Check(p.path, fset, []*ast.File{f}, nil)
		if err != nil {
			t.Fatal(err)
		}
		imp[p.path] = pkg
	}
	return imp
}

// runOn runs one analyzer over a client source file and returns the
// diagnostic messages with line numbers.
func runOn(t *testing.T, a *Analyzer, filename, src string) []string {
	t.Helper()
	fset, files, pkg, info := check(t, stubs(t), "crve/example/client", filename, src)
	diags, err := Run([]*Analyzer{a}, fset, files, pkg, info)
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	for _, d := range diags {
		out = append(out, fmt.Sprintf("%d: %s", fset.Position(d.Pos).Line, d.Message))
	}
	return out
}

func TestConfigLiteralFlagsRawLiteralArgument(t *testing.T) {
	src := `package client
import "crve/internal/nodespec"
func build(cfg nodespec.Config) error { return cfg.Validate() }
func bad() {
	build(nodespec.Config{Name: "raw"}) // line 5: flagged
}
func good() {
	build(nodespec.Config{Name: "ok"}.WithDefaults())
	cfg := nodespec.Config{Name: "var"}
	build(cfg.WithDefaults())
}
`
	got := runOn(t, ConfigLiteral, "client.go", src)
	if len(got) != 1 || !strings.HasPrefix(got[0], "5: ") {
		t.Fatalf("want exactly one finding on line 5, got %v", got)
	}
	if !strings.Contains(got[0], "WithDefaults") || !strings.Contains(got[0], "build") {
		t.Errorf("message should name the call and the fix: %v", got[0])
	}
}

func TestPortWidthFlagsMissingAndBadWidths(t *testing.T) {
	src := `package client
import (
	"crve/internal/nodespec"
	"crve/internal/stbus"
)
func newPort(cfg stbus.PortConfig) {}
func bad() {
	newPort(stbus.PortConfig{Type: stbus.Type3})                 // line 8: no DataBits
	newPort(stbus.PortConfig{Type: stbus.Type3, DataBits: 24})   // line 9: bad width
	_ = nodespec.Config{Port: stbus.PortConfig{Type: stbus.Type2}} // line 10: field value, no DataBits
	newPort(stbus.PortConfig{stbus.Type2, 12, 32, 0})            // line 11: positional, bad width
}
func good() {
	newPort(stbus.PortConfig{Type: stbus.Type3, DataBits: 32})
	_ = nodespec.Config{Port: stbus.PortConfig{Type: stbus.Type2, DataBits: 64}}
	newPort(stbus.PortConfig{}.WithDefaults()) // empty literal = deliberate zero value
	w := 24
	newPort(stbus.PortConfig{Type: stbus.Type3, DataBits: w}) // non-constant: not judged
}
`
	got := runOn(t, PortWidth, "client.go", src)
	if len(got) != 4 {
		t.Fatalf("want 4 findings, got %d: %v", len(got), got)
	}
	for i, line := range []string{"8: ", "9: ", "10: ", "11: "} {
		if !strings.HasPrefix(got[i], line) {
			t.Errorf("finding %d on wrong line: %v", i, got[i])
		}
	}
}

func TestPortWidthSkipsTestFiles(t *testing.T) {
	src := `package client
import "crve/internal/stbus"
func newPort(cfg stbus.PortConfig) {}
func deliberatelyBad() {
	newPort(stbus.PortConfig{Type: stbus.Type2, DataBits: 7}) // exercising the panic path
}
`
	if got := runOn(t, PortWidth, "client_test.go", src); len(got) != 0 {
		t.Fatalf("portwidth must not fire in _test.go files, got %v", got)
	}
}

func TestSignalReadFlagsElaborationReads(t *testing.T) {
	src := `package client
import "crve/internal/sim"
func elaborate(sm *sim.Simulator) {
	d := sm.Signal("d", 8)
	q := sm.Signal("q", 8)
	if d.Bool() { // line 6: read before the simulator has run
		return
	}
	sm.Seq("reg", func() { q.Set(d.Get()) }) // callback read: fine
	_ = q.U64() // line 10: elaboration read, value not settled
}
`
	got := runOn(t, SignalRead, "client.go", src)
	if len(got) != 2 {
		t.Fatalf("want 2 findings, got %d: %v", len(got), got)
	}
	for i, line := range []string{"6: ", "10: "} {
		if !strings.HasPrefix(got[i], line) {
			t.Errorf("finding %d on wrong line: %v", i, got[i])
		}
	}
	if !strings.Contains(got[0], "Bool") || !strings.Contains(got[1], "U64") {
		t.Errorf("messages should name the read method: %v", got)
	}
}

func TestSignalReadFlagsScopeRegistration(t *testing.T) {
	src := `package client
import "crve/internal/sim"
func build(sc sim.Scope) {
	req := sc.Bool("req") // constructor, not a read
	gnt := sc.Bool("gnt")
	sc.Comb("grant", func() { gnt.SetBool(req.Bool()) }, req)
	if gnt.Bool() { // line 7: elaboration read under a Scope registration
		panic("unsettled")
	}
}
`
	got := runOn(t, SignalRead, "client.go", src)
	if len(got) != 1 || !strings.HasPrefix(got[0], "7: ") {
		t.Fatalf("want exactly one finding on line 7, got %v", got)
	}
}

func TestSignalReadAllowsReadsAfterRun(t *testing.T) {
	src := `package client
import "crve/internal/sim"
func simulate() uint64 {
	sm := sim.New()
	d := sm.Signal("d", 8)
	q := sm.Signal("q", 8)
	sm.Seq("reg", func() { q.Set(d.Get()) })
	if err := sm.Run(10); err != nil {
		return 0
	}
	return q.U64() // settled: the simulator has run
}
`
	if got := runOn(t, SignalRead, "client.go", src); len(got) != 0 {
		t.Fatalf("reads after Run must not be flagged, got %v", got)
	}
}

func TestSignalReadIgnoresHelpersWithoutRegistration(t *testing.T) {
	src := `package client
import "crve/internal/sim"
func fire(req, gnt *sim.Signal) bool { return req.Bool() && gnt.Bool() }
func watch(sm *sim.Simulator, q *sim.Signal) {
	sm.AtCycleEnd(func() {
		_ = q.U64() // inside the callback: fine
	})
}
`
	if got := runOn(t, SignalRead, "client.go", src); len(got) != 0 {
		t.Fatalf("helpers that register nothing must not be flagged, got %v", got)
	}
}

func TestAnalyzersAreRegistered(t *testing.T) {
	names := map[string]bool{}
	for _, a := range Analyzers() {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %+v incomplete", a)
		}
		if names[a.Name] {
			t.Errorf("duplicate analyzer %s", a.Name)
		}
		names[a.Name] = true
	}
	if !names["configliteral"] || !names["portwidth"] || !names["signalread"] {
		t.Errorf("expected analyzers missing: %v", names)
	}
}

func TestPrintFlagsJSONShape(t *testing.T) {
	var buf bytes.Buffer
	printFlagsJSON(&buf)
	var flags []struct {
		Name  string
		Bool  bool
		Usage string
	}
	if err := json.Unmarshal(buf.Bytes(), &flags); err != nil {
		t.Fatalf("-flags output is not the JSON shape go vet expects: %v\n%s", err, buf.String())
	}
}

// TestVettoolEndToEnd is the acceptance check for the vet protocol: build
// cmd/crvevet and let the real go command drive it over this repository.
func TestVettoolEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the tool and vets the whole repo")
	}
	goTool, err := exec.LookPath("go")
	if err != nil {
		t.Skip("go command not available")
	}
	tool := filepath.Join(t.TempDir(), "crvevet")
	build := exec.Command(goTool, "build", "-o", tool, "crve/cmd/crvevet")
	build.Dir = repoRoot(t)
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building crvevet: %v\n%s", err, out)
	}
	vet := exec.Command(goTool, "vet", "-vettool="+tool, "./...")
	vet.Dir = repoRoot(t)
	if out, err := vet.CombinedOutput(); err != nil {
		t.Fatalf("go vet -vettool reported findings or failed: %v\n%s", err, out)
	}
}

func repoRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	return filepath.Dir(filepath.Dir(dir)) // internal/analysis -> repo root
}
