package analysis

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"

	"crve/internal/stbus"
)

// Bindcheck flags stbus.Bind call sites whose two ports provably carry
// mismatched configurations. Bind panics at elaboration when the bundles
// differ; this analyzer moves that discovery to vet time by tracking
// PortConfig provenance through the idiomatic construction patterns:
//
//   - stbus.PortConfig composite literals with constant fields, copies of
//     such values, constant single-field rewrites and WithDefaults calls;
//   - stbus.NewPort, whose third argument fixes the bundle configuration;
//   - rtl.NewNode / bca.NewNode, whose config's Port field fixes every
//     Init[i] and Tgt[i] bundle;
//   - rtl.NewConverter / NewSizeConverter / NewTypeConverter, which fix the
//     Up and Down bundles (the size/type variants derive Down from Up);
//   - rtl.NewMemory / rtl.NewRegDecoder, whose config's Port field fixes
//     the endpoint bundle.
//
// The interpretation is deliberately conservative: any construction or
// assignment it cannot resolve to constants marks the value unknown, and a
// Bind is reported only when BOTH sides are fully known and differ. It runs
// per function body in statement order with no control-flow joins, so a
// variable reassigned on a branch keeps the last value seen textually —
// elaboration code is straight-line in practice. _test.go files are exempt:
// tests bind mismatched ports on purpose to exercise the panic path.
var Bindcheck = &Analyzer{
	Name: "bindcheck",
	Doc:  "report stbus.Bind calls joining ports with provably mismatched configurations",
	Run:  runBindcheck,
}

func runBindcheck(pass *Pass) error {
	for _, file := range pass.Files {
		if strings.HasSuffix(pass.Fset.Position(file.Package).Filename, "_test.go") {
			continue
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			bc := &bindChecker{
				pass:  pass,
				cfgs:  map[types.Object]absCfg{},
				comps: map[types.Object]compOrigin{},
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.AssignStmt:
					bc.assign(n)
				case *ast.CallExpr:
					bc.checkBindCall(n)
				}
				return true
			})
		}
	}
	return nil
}

// absCfg is the abstract value of one stbus.PortConfig: either a fully
// concrete configuration or unknown. Partial knowledge is not tracked — a
// single unresolvable field poisons the whole value, which keeps the
// analyzer free of false positives.
type absCfg struct {
	cfg   stbus.PortConfig
	known bool
}

type compKind int

const (
	compPort     compKind = iota // a bare *stbus.Port; cfg in a
	compConv                     // a converter; Up in a, Down in b
	compNode                     // a node; the shared port cfg in a
	compEndpoint                 // memory or register decoder; Port cfg in a
)

// compOrigin records which constructor produced a component variable and
// the abstract configurations of the port bundles it exposes.
type compOrigin struct {
	kind compKind
	a, b absCfg
}

// bindChecker is the per-function abstract interpreter.
type bindChecker struct {
	pass  *Pass
	cfgs  map[types.Object]absCfg     // stbus.PortConfig variables
	comps map[types.Object]compOrigin // *stbus.Port and component variables
}

// assign updates the environment for one assignment statement.
func (bc *bindChecker) assign(n *ast.AssignStmt) {
	// Field write: x.Field = v on a tracked PortConfig variable.
	if len(n.Lhs) == 1 && len(n.Rhs) == 1 {
		if sel, ok := n.Lhs[0].(*ast.SelectorExpr); ok {
			bc.fieldWrite(sel, n.Rhs[0])
			return
		}
	}
	// Multi-value: comp, err := rtl.NewNode(...). The first variable gets
	// the component origin.
	if len(n.Rhs) == 1 && len(n.Lhs) > 1 {
		bc.bindLhs(n.Lhs[0], n.Rhs[0])
		for _, l := range n.Lhs[1:] {
			bc.invalidate(l)
		}
		return
	}
	if len(n.Lhs) == len(n.Rhs) {
		for i := range n.Lhs {
			bc.bindLhs(n.Lhs[i], n.Rhs[i])
		}
	}
}

// bindLhs records what rhs means for the variable lhs names, or forgets the
// variable when the value cannot be resolved.
func (bc *bindChecker) bindLhs(lhs, rhs ast.Expr) {
	obj := bc.lhsObj(lhs)
	if obj == nil {
		return
	}
	if isNamed(obj.Type(), stbusPath, "PortConfig") {
		c := bc.evalCfg(rhs) // evaluate before overwriting: p = p.WithDefaults()
		delete(bc.comps, obj)
		bc.cfgs[obj] = c
		return
	}
	org, ok := bc.evalComponent(rhs)
	delete(bc.cfgs, obj)
	delete(bc.comps, obj)
	if ok {
		bc.comps[obj] = org
	}
}

// fieldWrite handles x.Field = v: a constant write to a field of a tracked
// PortConfig keeps the value concrete, anything else poisons it. Writes
// through component selectors invalidate the component.
func (bc *bindChecker) fieldWrite(sel *ast.SelectorExpr, rhs ast.Expr) {
	base, ok := sel.X.(*ast.Ident)
	if !ok {
		return
	}
	obj := bc.pass.TypesInfo.Uses[base]
	if obj == nil {
		return
	}
	if cur, ok := bc.cfgs[obj]; ok {
		v, vok := bc.constInt(rhs)
		if !vok || !setCfgField(&cur.cfg, sel.Sel.Name, v) {
			cur.known = false
		}
		bc.cfgs[obj] = cur
		return
	}
	delete(bc.comps, obj)
}

// invalidate forgets everything known about the variable lhs names.
func (bc *bindChecker) invalidate(lhs ast.Expr) {
	if obj := bc.lhsObj(lhs); obj != nil {
		delete(bc.cfgs, obj)
		delete(bc.comps, obj)
	}
}

// lhsObj resolves the object an assignment target names (both = and :=).
func (bc *bindChecker) lhsObj(lhs ast.Expr) types.Object {
	id, ok := lhs.(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	if obj := bc.pass.TypesInfo.Defs[id]; obj != nil {
		return obj
	}
	return bc.pass.TypesInfo.Uses[id]
}

// checkBindCall reports a diagnostic when both arguments of an stbus.Bind
// call resolve to concrete, differing port configurations.
func (bc *bindChecker) checkBindCall(call *ast.CallExpr) {
	if !bc.calleeIs(call, stbusPath, "Bind") || len(call.Args) != 3 {
		return
	}
	a := bc.evalPort(call.Args[1])
	b := bc.evalPort(call.Args[2])
	if !a.known || !b.known {
		return
	}
	ca, cb := a.cfg.WithDefaults(), b.cfg.WithDefaults()
	if ca == cb {
		return
	}
	bc.pass.Reportf(call.Pos(),
		"stbus.Bind joins ports with provably mismatched configurations (%s): this panics at elaboration",
		strings.Join(ca.Diff(cb), ", "))
}

// evalPort resolves an expression of type *stbus.Port to the abstract
// configuration of the bundle it denotes.
func (bc *bindChecker) evalPort(e ast.Expr) absCfg {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if org, ok := bc.comps[bc.pass.TypesInfo.Uses[e]]; ok && org.kind == compPort {
			return org.a
		}
	case *ast.SelectorExpr:
		base, ok := e.X.(*ast.Ident)
		if !ok {
			return absCfg{}
		}
		org, ok := bc.comps[bc.pass.TypesInfo.Uses[base]]
		if !ok {
			return absCfg{}
		}
		switch {
		case org.kind == compConv && e.Sel.Name == "Up":
			return org.a
		case org.kind == compConv && e.Sel.Name == "Down":
			return org.b
		case org.kind == compEndpoint && e.Sel.Name == "Port":
			return org.a
		}
	case *ast.IndexExpr:
		// node.Init[i] / node.Tgt[i]: every port of a node carries the
		// node's single configuration, so the index is irrelevant.
		sel, ok := ast.Unparen(e.X).(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Init" && sel.Sel.Name != "Tgt") {
			return absCfg{}
		}
		base, ok := sel.X.(*ast.Ident)
		if !ok {
			return absCfg{}
		}
		if org, ok := bc.comps[bc.pass.TypesInfo.Uses[base]]; ok && org.kind == compNode {
			return org.a
		}
	case *ast.CallExpr:
		if org, ok := bc.evalComponent(e); ok && org.kind == compPort {
			return org.a
		}
	}
	return absCfg{}
}

// evalComponent resolves a constructor call (or a plain port expression) to
// the component origin it produces.
func (bc *bindChecker) evalComponent(e ast.Expr) (compOrigin, bool) {
	e = ast.Unparen(e)
	call, ok := e.(*ast.CallExpr)
	if !ok {
		// up := szConv.Up and friends: a copied port keeps its bundle.
		if t := bc.exprType(e); t != nil && isPortPtr(t) {
			return compOrigin{kind: compPort, a: bc.evalPort(e)}, true
		}
		return compOrigin{}, false
	}
	switch {
	case bc.calleeIs(call, stbusPath, "NewPort") && len(call.Args) == 3:
		return compOrigin{kind: compPort, a: bc.evalCfg(call.Args[2])}, true
	case bc.calleeIs(call, rtlPath, "NewSizeConverter") && len(call.Args) == 4:
		up := bc.evalCfg(call.Args[2])
		down := up
		if v, ok := bc.constInt(call.Args[3]); ok {
			down.cfg.DataBits = int(v)
		} else {
			down.known = false
		}
		return compOrigin{kind: compConv, a: up, b: down}, true
	case bc.calleeIs(call, rtlPath, "NewTypeConverter") && len(call.Args) == 4:
		up := bc.evalCfg(call.Args[2])
		down := up
		if v, ok := bc.constInt(call.Args[3]); ok {
			down.cfg.Type = stbus.Type(v)
		} else {
			down.known = false
		}
		return compOrigin{kind: compConv, a: up, b: down}, true
	case bc.calleeIs(call, rtlPath, "NewConverter") && len(call.Args) == 2:
		lit, ok := configLiteral(call.Args[1])
		if !ok {
			return compOrigin{kind: compConv}, true
		}
		return compOrigin{
			kind: compConv,
			a:    bc.evalCfg(fieldValue(lit, "Up", 1)),
			b:    bc.evalCfg(fieldValue(lit, "Down", 2)),
		}, true
	case (bc.calleeIs(call, rtlPath, "NewNode") || bc.calleeIs(call, bcaPath, "NewNode")) && len(call.Args) >= 2:
		return compOrigin{kind: compNode, a: bc.cfgField(call.Args[1], "Port", 1)}, true
	case bc.calleeIs(call, rtlPath, "NewMemory") && len(call.Args) == 2:
		return compOrigin{kind: compEndpoint, a: bc.cfgField(call.Args[1], "Port", 1)}, true
	case bc.calleeIs(call, rtlPath, "NewRegDecoder") && len(call.Args) == 2:
		return compOrigin{kind: compEndpoint, a: bc.cfgField(call.Args[1], "Port", 1)}, true
	}
	return compOrigin{}, false
}

// evalCfg resolves an expression of type stbus.PortConfig to an abstract
// value; anything it cannot prove constant comes back unknown.
func (bc *bindChecker) evalCfg(e ast.Expr) absCfg {
	if e == nil {
		return absCfg{}
	}
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if c, ok := bc.cfgs[bc.pass.TypesInfo.Uses[e]]; ok {
			return c
		}
	case *ast.CompositeLit:
		if !isNamed(bc.exprType(e), stbusPath, "PortConfig") {
			return absCfg{}
		}
		out := absCfg{known: true}
		for i, elt := range e.Elts {
			name, value := "", elt
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				key, ok := kv.Key.(*ast.Ident)
				if !ok {
					return absCfg{}
				}
				name, value = key.Name, kv.Value
			} else {
				name = [...]string{"Type", "DataBits", "AddrBits", "Endian"}[i]
			}
			v, ok := bc.constInt(value)
			if !ok || !setCfgField(&out.cfg, name, v) {
				return absCfg{}
			}
		}
		return out
	case *ast.CallExpr:
		// cfg.WithDefaults(): defaults are reapplied at comparison time,
		// so the call is transparent here.
		if sel, ok := e.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "WithDefaults" &&
			isNamed(bc.exprType(sel.X), stbusPath, "PortConfig") && len(e.Args) == 0 {
			return bc.evalCfg(sel.X)
		}
	}
	return absCfg{}
}

// cfgField extracts a PortConfig-valued field from a config composite
// literal argument (unwrapping a trailing WithDefaults call).
func (bc *bindChecker) cfgField(arg ast.Expr, name string, pos int) absCfg {
	lit, ok := configLiteral(arg)
	if !ok {
		return absCfg{}
	}
	return bc.evalCfg(fieldValue(lit, name, pos))
}

// configLiteral unwraps `Config{...}` or `Config{...}.WithDefaults()`.
func configLiteral(e ast.Expr) (*ast.CompositeLit, bool) {
	e = ast.Unparen(e)
	if call, ok := e.(*ast.CallExpr); ok && len(call.Args) == 0 {
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "WithDefaults" {
			e = ast.Unparen(sel.X)
		}
	}
	lit, ok := e.(*ast.CompositeLit)
	return lit, ok
}

// fieldValue returns the value of the named field in a composite literal,
// accepting the positional form at index pos. nil means absent.
func fieldValue(lit *ast.CompositeLit, name string, pos int) ast.Expr {
	for i, elt := range lit.Elts {
		if kv, ok := elt.(*ast.KeyValueExpr); ok {
			if key, ok := kv.Key.(*ast.Ident); ok && key.Name == name {
				return kv.Value
			}
			continue
		}
		if i == pos {
			return elt
		}
	}
	return nil
}

// setCfgField writes an int64 into the named PortConfig field; false means
// the name is not a PortConfig field.
func setCfgField(cfg *stbus.PortConfig, name string, v int64) bool {
	switch name {
	case "Type":
		cfg.Type = stbus.Type(v)
	case "DataBits":
		cfg.DataBits = int(v)
	case "AddrBits":
		cfg.AddrBits = int(v)
	case "Endian":
		cfg.Endian = stbus.Endianness(v)
	default:
		return false
	}
	return true
}

// constInt evaluates an expression to an integer constant.
func (bc *bindChecker) constInt(e ast.Expr) (int64, bool) {
	tv, ok := bc.pass.TypesInfo.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.Int {
		return 0, false
	}
	return constant.Int64Val(tv.Value)
}

// calleeIs reports whether the call invokes the package-level function
// pkgPath.name.
func (bc *bindChecker) calleeIs(call *ast.CallExpr, pkgPath, name string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := bc.pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Name() != name {
		return false
	}
	return fn.Pkg() != nil && fn.Pkg().Path() == pkgPath
}

// exprType returns the static type of an expression, or nil.
func (bc *bindChecker) exprType(e ast.Expr) types.Type {
	return bc.pass.TypesInfo.Types[e].Type
}

// isPortPtr reports whether t is *stbus.Port.
func isPortPtr(t types.Type) bool {
	p, ok := t.(*types.Pointer)
	return ok && isNamed(p.Elem(), stbusPath, "Port")
}
