package stbus

import (
	"fmt"

	"crve/internal/sim"
)

// PortConfig holds the static parameters of an STBus interface, the same set
// the paper lists as CATG configuration parameters: protocol type, bus size
// and endianness (address width is also configurable; pipe size is a node
// parameter, see internal/rtl).
type PortConfig struct {
	Type     Type
	DataBits int // data bus width: 8, 16, 32, 64, 128 or 256
	AddrBits int // address width, 1..64 (0 means the default of 32)
	Endian   Endianness
}

// WithDefaults fills zero-valued fields with the usual STBus defaults.
func (c PortConfig) WithDefaults() PortConfig {
	if c.AddrBits == 0 {
		c.AddrBits = 32
	}
	return c
}

// Validate checks that the configuration describes a legal STBus interface.
func (c PortConfig) Validate() error {
	if !c.Type.Valid() {
		return fmt.Errorf("stbus: bad protocol type %d", int(c.Type))
	}
	switch c.DataBits {
	case 8, 16, 32, 64, 128, 256:
	default:
		return fmt.Errorf("stbus: bad data width %d (want 8..256 power of two)", c.DataBits)
	}
	if c.AddrBits < 1 || c.AddrBits > 64 {
		return fmt.Errorf("stbus: bad address width %d", c.AddrBits)
	}
	if c.Endian != LittleEndian && c.Endian != BigEndian {
		return fmt.Errorf("stbus: bad endianness %d", int(c.Endian))
	}
	return nil
}

// BusBytes returns the data bus width in bytes.
func (c PortConfig) BusBytes() int { return c.DataBits / 8 }

func (c PortConfig) String() string {
	return fmt.Sprintf("%v/%db/%v", c.Type, c.DataBits, c.Endian)
}

// Diff returns a human-readable entry per field where c and o differ, in
// declaration order (e.g. "data_bits 64 vs 32"). An empty slice means the
// configurations are identical. Bind's incompatibility panic and the fabric
// linter's CRVE018 diagnostic both print this diff, so a mismatch reads the
// same whether it is caught statically or escapes to elaboration.
func (c PortConfig) Diff(o PortConfig) []string {
	var d []string
	if c.Type != o.Type {
		d = append(d, fmt.Sprintf("type %v vs %v", c.Type, o.Type))
	}
	if c.DataBits != o.DataBits {
		d = append(d, fmt.Sprintf("data_bits %d vs %d", c.DataBits, o.DataBits))
	}
	if c.AddrBits != o.AddrBits {
		d = append(d, fmt.Sprintf("addr_bits %d vs %d", c.AddrBits, o.AddrBits))
	}
	if c.Endian != o.Endian {
		d = append(d, fmt.Sprintf("endian %v vs %v", c.Endian, o.Endian))
	}
	return d
}

// Port is the signal bundle of one STBus interface: a request channel
// (initiator drives req and the cell payload, target answers gnt) and a
// response channel (target drives r_req and the response payload, initiator
// answers r_gnt). A transfer happens on every cycle where both req and gnt
// (resp. r_req and r_gnt) are observed high at the cycle boundary.
//
// Type I uses the same wires with stricter rules: a single outstanding
// operation, so the response channel is only ever busy for the one pending
// request.
type Port struct {
	Cfg  PortConfig
	Name string

	// Request channel.
	Req  *sim.Signal // initiator: transfer request valid
	Gnt  *sim.Signal // target: transfer accepted this cycle
	Opc  *sim.Signal // opcode (8)
	Add  *sim.Signal // address (AddrBits)
	Data *sim.Signal // write data (DataBits)
	BE   *sim.Signal // byte enables (DataBits/8)
	EOP  *sim.Signal // end of request packet
	Lck  *sim.Signal // chunk lock
	TID  *sim.Signal // transaction id (8)
	Src  *sim.Signal // source id (8)
	Pri  *sim.Signal // priority (4)

	// Response channel.
	RReq  *sim.Signal // target: response valid
	RGnt  *sim.Signal // initiator: response accepted this cycle
	ROpc  *sim.Signal // response opcode (8)
	RData *sim.Signal // read data (DataBits)
	REOP  *sim.Signal // end of response packet
	RTID  *sim.Signal // response transaction id (8)
	RSrc  *sim.Signal // response source id (8)
}

// NewPort creates the signal bundle under scope sc with the given instance
// name. It panics on an invalid configuration (ports are built during
// elaboration, where misconfiguration is a programming error).
func NewPort(sc sim.Scope, name string, cfg PortConfig) *Port {
	cfg = cfg.WithDefaults()
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	p := sc.Sub(name)
	return &Port{
		Cfg:  cfg,
		Name: p.Path(),
		Req:  p.Bool("req"),
		Gnt:  p.Bool("gnt"),
		Opc:  p.Signal("opc", 8),
		Add:  p.Signal("add", cfg.AddrBits),
		Data: p.Signal("data", cfg.DataBits),
		BE:   p.Signal("be", cfg.BusBytes()),
		EOP:  p.Bool("eop"),
		Lck:  p.Bool("lck"),
		TID:  p.Signal("tid", 8),
		Src:  p.Signal("src", 8),
		Pri:  p.Signal("pri", 4),

		RReq:  p.Bool("r_req"),
		RGnt:  p.Bool("r_gnt"),
		ROpc:  p.Signal("r_opc", 8),
		RData: p.Signal("r_data", cfg.DataBits),
		REOP:  p.Bool("r_eop"),
		RTID:  p.Signal("r_tid", 8),
		RSrc:  p.Signal("r_src", 8),
	}
}

// Signals returns every wire of the port in a stable order, for tracing and
// per-port alignment analysis.
func (p *Port) Signals() []*sim.Signal {
	return []*sim.Signal{
		p.Req, p.Gnt, p.Opc, p.Add, p.Data, p.BE, p.EOP, p.Lck, p.TID, p.Src, p.Pri,
		p.RReq, p.RGnt, p.ROpc, p.RData, p.REOP, p.RTID, p.RSrc,
	}
}

// DriveCell schedules the request-channel payload of cell c with req
// asserted.
func (p *Port) DriveCell(c Cell) {
	p.Req.SetBool(true)
	p.Opc.SetU64(uint64(c.Opc))
	p.Add.SetU64(c.Addr)
	p.Data.Set(c.Data)
	p.BE.SetU64(c.BE)
	p.EOP.SetBool(c.EOP)
	p.Lck.SetBool(c.Lck)
	p.TID.SetU64(uint64(c.TID))
	p.Src.SetU64(uint64(c.Src))
	p.Pri.SetU64(uint64(c.Pri))
}

// IdleReq schedules the request channel to idle (req low, payload cleared so
// waveforms of independent implementations stay comparable).
func (p *Port) IdleReq() {
	p.Req.SetBool(false)
	p.Opc.SetU64(0)
	p.Add.SetU64(0)
	p.Data.Set(sim.Bits{})
	p.BE.SetU64(0)
	p.EOP.SetBool(false)
	p.Lck.SetBool(false)
	p.TID.SetU64(0)
	p.Src.SetU64(0)
	p.Pri.SetU64(0)
}

// SampleCell reads the committed request-channel payload.
func (p *Port) SampleCell() Cell {
	return Cell{
		Opc:  Opcode(p.Opc.U64()),
		Addr: p.Add.U64(),
		Data: p.Data.Get(),
		BE:   p.BE.U64(),
		EOP:  p.EOP.Bool(),
		Lck:  p.Lck.Bool(),
		TID:  uint8(p.TID.U64()),
		Src:  uint8(p.Src.U64()),
		Pri:  uint8(p.Pri.U64()),
	}
}

// DriveResp schedules the response-channel payload of cell r with r_req
// asserted.
func (p *Port) DriveResp(r RespCell) {
	p.RReq.SetBool(true)
	p.ROpc.SetU64(uint64(r.ROpc))
	p.RData.Set(r.Data)
	p.REOP.SetBool(r.EOP)
	p.RTID.SetU64(uint64(r.TID))
	p.RSrc.SetU64(uint64(r.Src))
}

// IdleResp schedules the response channel to idle.
func (p *Port) IdleResp() {
	p.RReq.SetBool(false)
	p.ROpc.SetU64(0)
	p.RData.Set(sim.Bits{})
	p.REOP.SetBool(false)
	p.RTID.SetU64(0)
	p.RSrc.SetU64(0)
}

// SampleResp reads the committed response-channel payload.
func (p *Port) SampleResp() RespCell {
	return RespCell{
		ROpc: uint8(p.ROpc.U64()),
		Data: p.RData.Get(),
		EOP:  p.REOP.Bool(),
		TID:  uint8(p.RTID.U64()),
		Src:  uint8(p.RSrc.U64()),
	}
}

// ReqFire reports whether a request transfer completes this cycle.
func (p *Port) ReqFire() bool { return p.Req.Bool() && p.Gnt.Bool() }

// RespFire reports whether a response transfer completes this cycle.
func (p *Port) RespFire() bool { return p.RReq.Bool() && p.RGnt.Bool() }
