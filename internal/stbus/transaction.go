package stbus

import "fmt"

// Transaction is the monitor-level view of one complete STBus operation:
// request packet plus response packet, with reassembled payloads. The
// scoreboard, the functional-coverage model and the STBus Analyzer all work
// in terms of transactions.
type Transaction struct {
	// Initiator is the index of the issuing initiator port (-1 if unknown,
	// e.g. when extracted from a single-port trace).
	Initiator int
	// Target is the routed target port (-1 for unmapped/error).
	Target int

	Opc  Opcode
	Addr uint64
	TID  uint8
	Src  uint8
	Pri  uint8
	Lck  bool

	// WriteData is the reassembled request payload (store-type kinds).
	WriteData []byte
	// ReadData is the reassembled response payload (load-type kinds).
	ReadData []byte
	// Err reports an error response.
	Err bool

	// StartCycle is the cycle of the first granted request cell, ReqEndCycle
	// of the last, EndCycle of the last granted response cell.
	StartCycle  uint64
	ReqEndCycle uint64
	EndCycle    uint64
}

// Latency returns the total transaction latency in cycles.
func (t *Transaction) Latency() uint64 {
	if t.EndCycle < t.StartCycle {
		return 0
	}
	return t.EndCycle - t.StartCycle
}

func (t *Transaction) String() string {
	return fmt.Sprintf("init%d->tgt%d %v @%#x tid=%d src=%d err=%v cycles=[%d..%d]",
		t.Initiator, t.Target, t.Opc, t.Addr, t.TID, t.Src, t.Err, t.StartCycle, t.EndCycle)
}

// Key identifies a transaction for out-of-order matching: the (src, tid)
// pair Type III uses to pair responses with requests.
type Key struct {
	Src uint8
	TID uint8
}

// Key returns the transaction's matching key.
func (t *Transaction) Key() Key { return Key{Src: t.Src, TID: t.TID} }
