package stbus

import (
	"testing"
	"testing/quick"
)

func TestOpcodeEncoding(t *testing.T) {
	cases := []struct {
		op   Opcode
		kind OpKind
		size int
		str  string
	}{
		{LD1, KindLoad, 1, "LD1"},
		{LD64, KindLoad, 64, "LD64"},
		{ST4, KindStore, 4, "ST4"},
		{ST32, KindStore, 32, "ST32"},
		{RMW4, KindRMW, 4, "RMW4"},
		{SWAP4, KindSwap, 4, "SWAP4"},
		{Op(KindFlush, 1), KindFlush, 1, "FLUSH1"},
		{Op(KindPurge, 16), KindPurge, 16, "PURGE16"},
	}
	for _, c := range cases {
		if c.op.Kind() != c.kind {
			t.Errorf("%v kind = %v, want %v", c.op, c.op.Kind(), c.kind)
		}
		if c.op.SizeBytes() != c.size {
			t.Errorf("%v size = %d, want %d", c.op, c.op.SizeBytes(), c.size)
		}
		if c.op.String() != c.str {
			t.Errorf("%v String = %q, want %q", c.op, c.op.String(), c.str)
		}
		if !c.op.Valid() {
			t.Errorf("%v should be valid", c.op)
		}
	}
}

func TestOpcodeInvalid(t *testing.T) {
	if Opcode(0x6f).Valid() {
		t.Error("kind 6 should be invalid")
	}
	if Opcode(0x07).Valid() {
		t.Error("size log2 7 should be invalid")
	}
}

func TestOpPanicsOnBadSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Op with size 3 should panic")
		}
	}()
	Op(KindLoad, 3)
}

func TestOpcodeClassPredicates(t *testing.T) {
	if !LD4.IsLoad() || LD4.HasWriteData() {
		t.Error("LD4 misclassified")
	}
	if ST4.IsLoad() || !ST4.HasWriteData() {
		t.Error("ST4 misclassified")
	}
	if !RMW4.IsLoad() || !RMW4.HasWriteData() {
		t.Error("RMW4 should both read and write")
	}
	if !SWAP4.IsLoad() || !SWAP4.HasWriteData() {
		t.Error("SWAP4 should both read and write")
	}
	fl := Op(KindFlush, 4)
	if fl.IsLoad() || fl.HasWriteData() {
		t.Error("FLUSH carries no data")
	}
}

func TestValidForType1(t *testing.T) {
	if !LD4.ValidFor(Type1, 4) {
		t.Error("LD4 on 32-bit T1 should be valid")
	}
	if LD16.ValidFor(Type1, 4) {
		t.Error("LD16 exceeds T1 limit")
	}
	if LD8.ValidFor(Type1, 4) {
		t.Error("LD8 wider than 32-bit T1 bus should be invalid")
	}
	if RMW4.ValidFor(Type1, 4) {
		t.Error("RMW not in T1 command set")
	}
	if !LD8.ValidFor(Type1, 8) {
		t.Error("LD8 on 64-bit T1 should be valid")
	}
}

func TestValidForType23(t *testing.T) {
	for _, ty := range []Type{Type2, Type3} {
		for _, op := range []Opcode{LD1, LD64, ST64, RMW4, SWAP4, Op(KindFlush, 1)} {
			if !op.ValidFor(ty, 4) {
				t.Errorf("%v should be valid for %v", op, ty)
			}
		}
	}
}

func TestTypeStrings(t *testing.T) {
	if Type1.String() != "T1" || Type2.String() != "T2" || Type3.String() != "T3" {
		t.Error("type strings wrong")
	}
	if Type(9).Valid() {
		t.Error("type 9 should be invalid")
	}
}

func TestRespErrorFlag(t *testing.T) {
	if !IsErrorResp(RespError) || !IsErrorResp(RespError|RespData) {
		t.Error("error flag not detected")
	}
	if IsErrorResp(RespData) || IsErrorResp(RespOK) {
		t.Error("false error detection")
	}
}

func TestOpcodeRoundTripProperty(t *testing.T) {
	f := func(kindRaw, logRaw uint8) bool {
		k := OpKind(kindRaw % uint8(numKinds))
		size := 1 << (logRaw % 7)
		op := Op(k, size)
		return op.Kind() == k && op.SizeBytes() == size && op.Valid()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
