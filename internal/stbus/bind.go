package stbus

import (
	"fmt"
	"strings"

	"crve/internal/sim"
)

// Bind wires two port bundles back to back: initSide is the interface where
// a component plays the initiator role (it drives req, the request payload
// and r_gnt), tgtSide the interface where the other component plays the
// target role (it drives gnt, r_req and the response payload). Bind installs
// two combinational copy processes, the signal-level equivalent of the port
// map in a structural HDL netlist, letting nodes, converters and memories —
// each of which creates its own port bundle — compose into hierarchical
// interconnects like the paper's Figure 1.
func Bind(sm *sim.Simulator, initSide, tgtSide *Port) {
	if initSide.Cfg != tgtSide.Cfg {
		panic(fmt.Sprintf("stbus: binding incompatible ports %s (%v) and %s (%v): %s",
			initSide.Name, initSide.Cfg, tgtSide.Name, tgtSide.Cfg,
			strings.Join(initSide.Cfg.Diff(tgtSide.Cfg), ", ")))
	}
	fwd := [][2]*sim.Signal{
		{initSide.Req, tgtSide.Req}, {initSide.Opc, tgtSide.Opc}, {initSide.Add, tgtSide.Add},
		{initSide.Data, tgtSide.Data}, {initSide.BE, tgtSide.BE}, {initSide.EOP, tgtSide.EOP},
		{initSide.Lck, tgtSide.Lck}, {initSide.TID, tgtSide.TID}, {initSide.Src, tgtSide.Src},
		{initSide.Pri, tgtSide.Pri}, {initSide.RGnt, tgtSide.RGnt},
	}
	bwd := [][2]*sim.Signal{
		{tgtSide.Gnt, initSide.Gnt}, {tgtSide.RReq, initSide.RReq}, {tgtSide.ROpc, initSide.ROpc},
		{tgtSide.RData, initSide.RData}, {tgtSide.REOP, initSide.REOP},
		{tgtSide.RTID, initSide.RTID}, {tgtSide.RSrc, initSide.RSrc},
	}
	copyProc := func(name string, pairs [][2]*sim.Signal) {
		// Declared as IR so the compiled backend fuses the port map into the
		// flat bytecode program (each pair becomes one slot-to-slot copy).
		assigns := make([]sim.Assign, len(pairs))
		for i, p := range pairs {
			assigns[i] = sim.Assign{Dst: p[1], Src: sim.Read(p[0])}
		}
		sm.CombExpr(name, assigns...)
	}
	copyProc("bind."+initSide.Name+">"+tgtSide.Name, fwd)
	copyProc("bind."+tgtSide.Name+">"+initSide.Name, bwd)
}
