package stbus

import (
	"fmt"

	"crve/internal/sim"
)

// Cell is one beat of an STBus request packet: the unit transferred on a
// request channel in a single granted cycle.
type Cell struct {
	Opc  Opcode
	Addr uint64
	// Data carries up to one bus width of write data (stores, RMW, swap).
	Data sim.Bits
	// BE holds one byte-enable bit per byte lane of the bus.
	BE uint64
	// EOP marks the last cell of the packet.
	EOP bool
	// Lck, while set, chains this packet to the next one into a chunk that
	// keeps the slave allocated (Type II).
	Lck bool
	// TID tags the transaction for out-of-order matching (Type III).
	TID uint8
	// Src identifies the issuing initiator port; the interconnect uses it to
	// route the response back.
	Src uint8
	// Pri is the request priority used by priority-based arbiters.
	Pri uint8
}

func (c Cell) String() string {
	return fmt.Sprintf("%s @%#x be=%#x eop=%v lck=%v tid=%d src=%d pri=%d",
		c.Opc, c.Addr, c.BE, c.EOP, c.Lck, c.TID, c.Src, c.Pri)
}

// RespCell is one beat of an STBus response packet.
type RespCell struct {
	// ROpc is the response opcode (RespOK/RespData, possibly with RespError).
	ROpc uint8
	// Data carries up to one bus width of read data.
	Data sim.Bits
	// EOP marks the last cell of the response packet.
	EOP bool
	// TID echoes the request transaction tag.
	TID uint8
	// Src echoes the request source, routing the response to its initiator.
	Src uint8
}

// Err reports whether the cell carries an error response.
func (r RespCell) Err() bool { return IsErrorResp(r.ROpc) }

func (r RespCell) String() string {
	return fmt.Sprintf("ropc=%#x eop=%v tid=%d src=%d err=%v", r.ROpc, r.EOP, r.TID, r.Src, r.Err())
}
