package stbus

import (
	"fmt"
	"sort"
)

// Region maps a contiguous address range onto a target port of a node.
type Region struct {
	Base   uint64
	Size   uint64
	Target int
}

// End returns the first address past the region.
func (r Region) End() uint64 { return r.Base + r.Size }

// Contains reports whether addr falls inside the region.
func (r Region) Contains(addr uint64) bool { return addr >= r.Base && addr < r.End() }

// AddrMap is the routing table of a node: the decoder that picks the target
// port of every request by address.
type AddrMap []Region

// Route returns the target port for addr, or -1 when the address is
// unmapped (the node answers such requests with an error response).
func (m AddrMap) Route(addr uint64) int {
	for _, r := range m {
		if r.Contains(addr) {
			return r.Target
		}
	}
	return -1
}

// Validate checks the map for zero-sized, overflowing or overlapping regions
// and for target indices outside [0, nTargets).
func (m AddrMap) Validate(nTargets int) error {
	sorted := append(AddrMap(nil), m...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Base < sorted[j].Base })
	for i, r := range sorted {
		if r.Size == 0 {
			return fmt.Errorf("stbus: region %d at %#x has zero size", i, r.Base)
		}
		if r.End() < r.Base {
			return fmt.Errorf("stbus: region %d at %#x overflows", i, r.Base)
		}
		if r.Target < 0 || r.Target >= nTargets {
			return fmt.Errorf("stbus: region %d routes to target %d of %d", i, r.Target, nTargets)
		}
		if i > 0 && sorted[i-1].End() > r.Base {
			return fmt.Errorf("stbus: regions at %#x and %#x overlap", sorted[i-1].Base, r.Base)
		}
	}
	return nil
}

// UniformMap builds a map with one sizePer-byte region per target starting
// at base, the layout the regression tool uses by default.
func UniformMap(nTargets int, base, sizePer uint64) AddrMap {
	m := make(AddrMap, nTargets)
	for i := range m {
		m[i] = Region{Base: base + uint64(i)*sizePer, Size: sizePer, Target: i}
	}
	return m
}
