// Package stbus defines the STBus protocol vocabulary shared by every other
// subsystem: protocol types I/II/III, opcodes, cells, packets, transactions,
// the signal-level port bundle, and the address map used for routing.
//
// The definitions follow the public description of the STBus interconnect
// (STMicroelectronics "STBus Functional Specs", and the summary in Section 3
// of the paper):
//
//   - Type I — simple synchronous handshake, limited command set, no split
//     transactions: at most one outstanding operation per initiator.
//   - Type II — split transactions and pipelining; symmetric packets (the
//     response packet has as many cells as the request packet); traffic must
//     stay ordered; chunks (lck) group transactions to hold slave allocation.
//   - Type III — adds out-of-order completion (matched by src/tid) and
//     asymmetric packets (single-cell read requests, single-cell write
//     responses).
//
// This package is deliberately the ONLY code shared between the RTL view
// (internal/rtl) and the BCA view (internal/bca), so that the alignment
// comparison between the two models checks genuinely independent
// implementations, as in the paper where the models came from different
// teams.
package stbus

import "fmt"

// Type selects one of the three STBus protocol variants.
type Type int

const (
	// Type1 is the register-access protocol (peripheral interface).
	Type1 Type = 1
	// Type2 is the basic split-transaction protocol (memory controllers).
	Type2 Type = 2
	// Type3 is the advanced protocol with out-of-order support (CPUs, DMAs).
	Type3 Type = 3
)

// Valid reports whether t is one of the three defined protocol types.
func (t Type) Valid() bool { return t >= Type1 && t <= Type3 }

func (t Type) String() string {
	switch t {
	case Type1:
		return "T1"
	case Type2:
		return "T2"
	case Type3:
		return "T3"
	default:
		return fmt.Sprintf("T?%d", int(t))
	}
}

// OpKind is the operation class encoded in the high nibble of an Opcode.
type OpKind uint8

const (
	// KindLoad is a read of 2^n bytes.
	KindLoad OpKind = iota
	// KindStore is a write of 2^n bytes.
	KindStore
	// KindRMW is an atomic read-modify-write (Type II+).
	KindRMW
	// KindSwap atomically exchanges memory and data (Type II+).
	KindSwap
	// KindFlush forces write-back of a posted buffer (Type II+).
	KindFlush
	// KindPurge invalidates a buffered region (Type II+).
	KindPurge
	numKinds
)

func (k OpKind) String() string {
	switch k {
	case KindLoad:
		return "LD"
	case KindStore:
		return "ST"
	case KindRMW:
		return "RMW"
	case KindSwap:
		return "SWAP"
	case KindFlush:
		return "FLUSH"
	case KindPurge:
		return "PURGE"
	default:
		return fmt.Sprintf("K?%d", uint8(k))
	}
}

// Opcode encodes an STBus request operation: the high nibble is the OpKind
// and the low nibble is log2 of the operand size in bytes (0..6, i.e. 1 to
// 64 bytes, the maximum STBus operation size).
type Opcode uint8

// Op assembles an opcode from a kind and a size in bytes (a power of two,
// 1..64).
func Op(k OpKind, sizeBytes int) Opcode {
	l := sizeLog2(sizeBytes)
	if l < 0 {
		panic(fmt.Sprintf("stbus: invalid operation size %d", sizeBytes))
	}
	return Opcode(uint8(k)<<4 | uint8(l))
}

// Convenience opcode constants for the common load/store sizes.
var (
	LD1   = Op(KindLoad, 1)
	LD2   = Op(KindLoad, 2)
	LD4   = Op(KindLoad, 4)
	LD8   = Op(KindLoad, 8)
	LD16  = Op(KindLoad, 16)
	LD32  = Op(KindLoad, 32)
	LD64  = Op(KindLoad, 64)
	ST1   = Op(KindStore, 1)
	ST2   = Op(KindStore, 2)
	ST4   = Op(KindStore, 4)
	ST8   = Op(KindStore, 8)
	ST16  = Op(KindStore, 16)
	ST32  = Op(KindStore, 32)
	ST64  = Op(KindStore, 64)
	RMW4  = Op(KindRMW, 4)
	SWAP4 = Op(KindSwap, 4)
)

func sizeLog2(n int) int {
	for l := 0; l <= 6; l++ {
		if 1<<l == n {
			return l
		}
	}
	return -1
}

// Kind returns the operation class.
func (o Opcode) Kind() OpKind { return OpKind(o >> 4) }

// SizeBytes returns the operand size in bytes.
func (o Opcode) SizeBytes() int { return 1 << (o & 0xf) }

// Valid reports whether o is a well-formed opcode.
func (o Opcode) Valid() bool {
	return o.Kind() < numKinds && (o&0xf) <= 6
}

// IsLoad reports whether the opcode returns read data (loads, RMW and swap
// all return prior memory contents).
func (o Opcode) IsLoad() bool {
	k := o.Kind()
	return k == KindLoad || k == KindRMW || k == KindSwap
}

// HasWriteData reports whether request cells carry data.
func (o Opcode) HasWriteData() bool {
	k := o.Kind()
	return k == KindStore || k == KindRMW || k == KindSwap
}

// ValidFor reports whether the opcode may be issued on a port of protocol
// type t with the given data-bus width. Type I carries only simple loads
// and stores of at most 8 bytes that fit in a single bus cell.
func (o Opcode) ValidFor(t Type, busBytes int) bool {
	if !o.Valid() {
		return false
	}
	switch t {
	case Type1:
		k := o.Kind()
		if k != KindLoad && k != KindStore {
			return false
		}
		return o.SizeBytes() <= 8 && o.SizeBytes() <= busBytes
	case Type2, Type3:
		return true
	default:
		return false
	}
}

func (o Opcode) String() string {
	if !o.Valid() {
		return fmt.Sprintf("OPC?%02x", uint8(o))
	}
	return fmt.Sprintf("%s%d", o.Kind(), o.SizeBytes())
}

// Response opcode bits: bit 0 distinguishes load-type responses carrying
// data; bit 7 flags an error response.
const (
	// RespOK acknowledges a write-type request.
	RespOK uint8 = 0x00
	// RespData marks a response cell carrying read data.
	RespData uint8 = 0x01
	// RespError flags an error (unmapped address, protocol violation at a
	// converter, etc.). It may be combined with RespData.
	RespError uint8 = 0x80
)

// IsErrorResp reports whether a response opcode carries the error flag.
func IsErrorResp(ropc uint8) bool { return ropc&RespError != 0 }
