package stbus

import (
	"strings"
	"testing"

	"crve/internal/sim"
)

// TestBindPanicNamesPortsAndDiffsFields locks down the runtime escape hatch
// of the static bindcheck analyzer: when a mismatched bind does reach
// elaboration, the panic must name both ports and list the differing fields
// so the failure is diagnosable without a debugger.
func TestBindPanicNamesPortsAndDiffsFields(t *testing.T) {
	sm := sim.New()
	root := sim.Root(sm)
	a := NewPort(root, "wide", PortConfig{Type: Type3, DataBits: 64})
	b := NewPort(root, "narrow", PortConfig{Type: Type2, DataBits: 32})
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("Bind of incompatible ports did not panic")
		}
		msg, ok := r.(string)
		if !ok {
			t.Fatalf("panic value is %T, want string", r)
		}
		for _, want := range []string{"wide", "narrow", "type T3 vs T2", "data_bits 64 vs 32"} {
			if !strings.Contains(msg, want) {
				t.Errorf("panic message missing %q:\n%s", want, msg)
			}
		}
	}()
	Bind(sm, a, b)
}

func TestPortConfigDiff(t *testing.T) {
	base := PortConfig{Type: Type3, DataBits: 32, AddrBits: 32, Endian: LittleEndian}
	if d := base.Diff(base); len(d) != 0 {
		t.Errorf("identical configs diff = %v, want empty", d)
	}
	other := PortConfig{Type: Type2, DataBits: 64, AddrBits: 40, Endian: BigEndian}
	d := base.Diff(other)
	if len(d) != 4 {
		t.Fatalf("diff = %v, want 4 entries", d)
	}
	joined := strings.Join(d, ", ")
	for _, want := range []string{"type T3 vs T2", "data_bits 32 vs 64", "addr_bits 32 vs 40", "endian little vs big"} {
		if !strings.Contains(joined, want) {
			t.Errorf("diff missing %q: %s", want, joined)
		}
	}
}
