package stbus

import (
	"fmt"

	"crve/internal/sim"
)

// Endianness selects the byte-lane mapping of a port, one of the CATG
// configuration parameters named by the paper.
type Endianness int

const (
	// LittleEndian places ascending memory addresses on ascending byte lanes.
	LittleEndian Endianness = iota
	// BigEndian places ascending memory addresses on descending byte lanes.
	BigEndian
)

func (e Endianness) String() string {
	if e == BigEndian {
		return "big"
	}
	return "little"
}

// lane returns the byte lane carrying memory address a on a bus of busBytes.
func (e Endianness) lane(a uint64, busBytes int) int {
	l := int(a) % busBytes
	if e == BigEndian {
		return busBytes - 1 - l
	}
	return l
}

// ReqLen returns the number of cells in the request packet of operation op
// on a port of protocol type t with a busBytes-wide data bus.
func ReqLen(t Type, op Opcode, busBytes int) int {
	n := op.SizeBytes() / busBytes
	if n < 1 {
		n = 1
	}
	switch t {
	case Type1:
		return 1
	case Type2:
		return n
	case Type3:
		// Asymmetric: operations without write data need only one request
		// cell regardless of their size.
		if !op.HasWriteData() {
			return 1
		}
		return n
	default:
		panic(fmt.Sprintf("stbus: bad type %v", t))
	}
}

// RespLen returns the number of cells in the response packet of operation op
// on a port of protocol type t with a busBytes-wide data bus.
func RespLen(t Type, op Opcode, busBytes int) int {
	n := op.SizeBytes() / busBytes
	if n < 1 {
		n = 1
	}
	switch t {
	case Type1:
		return 1
	case Type2:
		// Symmetric protocol: response mirrors the request length.
		return ReqLen(Type2, op, busBytes)
	case Type3:
		if op.IsLoad() {
			return n
		}
		return 1
	default:
		panic(fmt.Sprintf("stbus: bad type %v", t))
	}
}

// beFor returns the byte-enable mask of size bytes starting at addr on a
// busBytes-wide lane set.
func beFor(e Endianness, addr uint64, size, busBytes int) uint64 {
	if size >= busBytes {
		return fullBE(busBytes)
	}
	var be uint64
	for i := 0; i < size; i++ {
		be |= 1 << uint(e.lane(addr+uint64(i), busBytes))
	}
	return be
}

func fullBE(busBytes int) uint64 {
	if busBytes == 64 {
		return ^uint64(0)
	}
	return (uint64(1) << uint(busBytes)) - 1
}

// PackLanes packs payload bytes for memory addresses addr..addr+len-1 onto
// the byte lanes of a busBytes-wide word.
func PackLanes(e Endianness, addr uint64, payload []byte, busBytes int) sim.Bits {
	var w sim.Bits
	for i, b := range payload {
		w = w.WithByte(e.lane(addr+uint64(i), busBytes), b)
	}
	return w
}

// UnpackLanes extracts size payload bytes for addresses addr.. from a bus
// word.
func UnpackLanes(e Endianness, addr uint64, w sim.Bits, size, busBytes int) []byte {
	out := make([]byte, size)
	for i := range out {
		out[i] = w.Byte(e.lane(addr+uint64(i), busBytes))
	}
	return out
}

// BuildRequest assembles the request packet of an operation.
//
// addr must be size-aligned (an STBus rule the protocol checkers enforce).
// payload must hold exactly op.SizeBytes() bytes for data-carrying kinds and
// be empty otherwise.
func BuildRequest(t Type, e Endianness, op Opcode, addr uint64, payload []byte,
	busBytes int, tid, src, pri uint8, lck bool) ([]Cell, error) {
	size := op.SizeBytes()
	if !op.ValidFor(t, busBytes) {
		return nil, fmt.Errorf("stbus: opcode %v invalid for %v/%d-byte port", op, t, busBytes)
	}
	if addr%uint64(size) != 0 {
		return nil, fmt.Errorf("stbus: address %#x not aligned to %v", addr, op)
	}
	if op.HasWriteData() {
		if len(payload) != size {
			return nil, fmt.Errorf("stbus: %v payload length %d, want %d", op, len(payload), size)
		}
	} else if len(payload) != 0 {
		return nil, fmt.Errorf("stbus: %v carries no write data", op)
	}
	n := ReqLen(t, op, busBytes)
	cells := make([]Cell, n)
	per := busBytes
	if size < busBytes {
		per = size
	}
	for i := range cells {
		a := addr + uint64(i*busBytes)
		c := Cell{
			Opc:  op,
			Addr: a,
			EOP:  i == n-1,
			Lck:  lck,
			TID:  tid,
			Src:  src,
			Pri:  pri,
		}
		if op.HasWriteData() {
			lo := i * busBytes
			hi := lo + per
			if hi > size {
				hi = size
			}
			c.Data = PackLanes(e, a, payload[lo:hi], busBytes)
			c.BE = beFor(e, a, hi-lo, busBytes)
		} else {
			// Read-type requests advertise the lanes they want.
			c.BE = beFor(e, a, per, busBytes)
		}
		cells[i] = c
	}
	return cells, nil
}

// BuildResponse assembles the response packet of an operation given the data
// read from the target (nil for non-load kinds). err stamps every cell with
// the error flag.
func BuildResponse(t Type, e Endianness, op Opcode, addr uint64, readData []byte,
	busBytes int, tid, src uint8, respErr bool) ([]RespCell, error) {
	size := op.SizeBytes()
	n := RespLen(t, op, busBytes)
	if op.IsLoad() && !respErr {
		if len(readData) != size {
			return nil, fmt.Errorf("stbus: %v read data length %d, want %d", op, len(readData), size)
		}
	}
	cells := make([]RespCell, n)
	per := busBytes
	if size < busBytes {
		per = size
	}
	for i := range cells {
		c := RespCell{EOP: i == n-1, TID: tid, Src: src}
		if op.IsLoad() {
			c.ROpc = RespData
			if !respErr {
				a := addr + uint64(i*busBytes)
				lo := i * busBytes
				hi := lo + per
				if hi > size {
					hi = size
				}
				if lo < len(readData) {
					c.Data = PackLanes(e, a, readData[lo:hi], busBytes)
				}
			}
		}
		if respErr {
			c.ROpc |= RespError
		}
		cells[i] = c
	}
	return cells, nil
}

// ExtractWriteData reassembles the payload bytes of a data-carrying request
// packet. It is the inverse of BuildRequest for stores.
func ExtractWriteData(e Endianness, cells []Cell, busBytes int) []byte {
	if len(cells) == 0 || !cells[0].Opc.HasWriteData() {
		return nil
	}
	size := cells[0].Opc.SizeBytes()
	per := busBytes
	if size < busBytes {
		per = size
	}
	out := make([]byte, 0, size)
	for _, c := range cells {
		take := per
		if len(out)+take > size {
			take = size - len(out)
		}
		for i := 0; i < take; i++ {
			out = append(out, c.Data.Byte(e.lane(c.Addr+uint64(i), busBytes)))
		}
	}
	return out
}

// ExtractReadData reassembles the payload bytes of a load response packet
// given the originating request's opcode and address.
func ExtractReadData(e Endianness, op Opcode, addr uint64, cells []RespCell, busBytes int) []byte {
	if !op.IsLoad() {
		return nil
	}
	size := op.SizeBytes()
	per := busBytes
	if size < busBytes {
		per = size
	}
	out := make([]byte, 0, size)
	for i, c := range cells {
		take := per
		if len(out)+take > size {
			take = size - len(out)
		}
		a := addr + uint64(i*busBytes)
		for k := 0; k < take; k++ {
			out = append(out, c.Data.Byte(e.lane(a+uint64(k), busBytes)))
		}
	}
	return out
}
