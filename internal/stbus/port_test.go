package stbus

import (
	"testing"

	"crve/internal/sim"
)

func testCfg() PortConfig {
	return PortConfig{Type: Type3, DataBits: 32, AddrBits: 32}
}

func TestPortConfigValidate(t *testing.T) {
	good := testCfg()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []PortConfig{
		{Type: Type(0), DataBits: 32, AddrBits: 32},
		{Type: Type2, DataBits: 12, AddrBits: 32},
		{Type: Type2, DataBits: 512, AddrBits: 32},
		{Type: Type2, DataBits: 32, AddrBits: 65},
		{Type: Type2, DataBits: 32, AddrBits: 32, Endian: Endianness(5)},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %d should be invalid: %+v", i, c)
		}
	}
	if got := (PortConfig{Type: Type2, DataBits: 64}).WithDefaults().AddrBits; got != 32 {
		t.Errorf("default addr bits = %d", got)
	}
}

func TestPortSignalsAndNames(t *testing.T) {
	sm := sim.New()
	p := NewPort(sim.Root(sm), "init0", testCfg())
	if p.Name != "init0" {
		t.Errorf("name %q", p.Name)
	}
	sigs := p.Signals()
	if len(sigs) != 18 {
		t.Fatalf("%d signals, want 18", len(sigs))
	}
	if p.Data.Width() != 32 || p.BE.Width() != 4 || p.Add.Width() != 32 {
		t.Error("signal widths wrong")
	}
	if p.Req.Name() != "init0.req" || p.RData.Name() != "init0.r_data" {
		t.Errorf("signal names %q %q", p.Req.Name(), p.RData.Name())
	}
}

func TestPortDriveSampleRoundTrip(t *testing.T) {
	sm := sim.New()
	p := NewPort(sim.Root(sm), "p", testCfg())
	c := Cell{
		Opc: ST4, Addr: 0x1234, Data: sim.B64(0xdeadbeef), BE: 0xf,
		EOP: true, Lck: true, TID: 9, Src: 3, Pri: 5,
	}
	sm.Seq("drive", func() { p.DriveCell(c) })
	if err := sm.Step(); err != nil {
		t.Fatal(err)
	}
	got := p.SampleCell()
	if got != c {
		t.Errorf("SampleCell = %+v, want %+v", got, c)
	}
	if !p.Req.Bool() {
		t.Error("req should be asserted")
	}
}

func TestPortRespRoundTrip(t *testing.T) {
	sm := sim.New()
	p := NewPort(sim.Root(sm), "p", testCfg())
	r := RespCell{ROpc: RespData | RespError, Data: sim.B64(0xcafe), EOP: true, TID: 2, Src: 1}
	sm.Seq("drive", func() { p.DriveResp(r) })
	if err := sm.Step(); err != nil {
		t.Fatal(err)
	}
	if got := p.SampleResp(); got != r {
		t.Errorf("SampleResp = %+v, want %+v", got, r)
	}
	if !p.RReq.Bool() {
		t.Error("r_req should be asserted")
	}
}

func TestPortIdleClearsPayload(t *testing.T) {
	sm := sim.New()
	p := NewPort(sim.Root(sm), "p", testCfg())
	step := 0
	sm.Seq("drive", func() {
		switch step {
		case 0:
			p.DriveCell(Cell{Opc: ST4, Addr: 0x10, Data: sim.B64(1), BE: 0xf, EOP: true})
			p.DriveResp(RespCell{ROpc: RespData, Data: sim.B64(2), EOP: true})
		case 1:
			p.IdleReq()
			p.IdleResp()
		}
		step++
	})
	if err := sm.Run(2); err != nil {
		t.Fatal(err)
	}
	if p.Req.Bool() || p.RReq.Bool() {
		t.Error("channels should be idle")
	}
	if c := p.SampleCell(); c != (Cell{}) {
		t.Errorf("request payload not cleared: %+v", c)
	}
	if r := p.SampleResp(); r != (RespCell{}) {
		t.Errorf("response payload not cleared: %+v", r)
	}
}

func TestReqRespFire(t *testing.T) {
	sm := sim.New()
	p := NewPort(sim.Root(sm), "p", testCfg())
	sm.Seq("drive", func() {
		p.Req.SetBool(true)
		p.Gnt.SetBool(false)
	})
	if err := sm.Step(); err != nil {
		t.Fatal(err)
	}
	if p.ReqFire() {
		t.Error("no fire without gnt")
	}
	sm2 := sim.New()
	q := NewPort(sim.Root(sm2), "q", testCfg())
	sm2.Seq("drive", func() {
		q.Req.SetBool(true)
		q.Gnt.SetBool(true)
		q.RReq.SetBool(true)
		q.RGnt.SetBool(true)
	})
	if err := sm2.Step(); err != nil {
		t.Fatal(err)
	}
	if !q.ReqFire() || !q.RespFire() {
		t.Error("both channels should fire")
	}
}

func TestNewPortPanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewPort with bad config should panic")
		}
	}()
	NewPort(sim.Root(sim.New()), "p", PortConfig{Type: Type2, DataBits: 7})
}
