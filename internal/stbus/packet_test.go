package stbus

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestReqRespLenType2Symmetric(t *testing.T) {
	// Type II: response packet mirrors request packet length.
	for _, op := range []Opcode{LD1, LD4, LD32, ST1, ST8, ST64, RMW4} {
		for _, bus := range []int{4, 8, 16} {
			if ReqLen(Type2, op, bus) != RespLen(Type2, op, bus) {
				t.Errorf("T2 %v on %dB bus: req %d != resp %d",
					op, bus, ReqLen(Type2, op, bus), RespLen(Type2, op, bus))
			}
		}
	}
	if got := ReqLen(Type2, LD32, 4); got != 8 {
		t.Errorf("T2 LD32/32-bit req len = %d, want 8", got)
	}
	if got := ReqLen(Type2, ST64, 8); got != 8 {
		t.Errorf("T2 ST64/64-bit req len = %d, want 8", got)
	}
}

func TestReqRespLenType3Asymmetric(t *testing.T) {
	// Type III: single-cell read requests, single-cell write responses.
	if got := ReqLen(Type3, LD32, 4); got != 1 {
		t.Errorf("T3 LD32 req len = %d, want 1", got)
	}
	if got := RespLen(Type3, LD32, 4); got != 8 {
		t.Errorf("T3 LD32 resp len = %d, want 8", got)
	}
	if got := ReqLen(Type3, ST32, 4); got != 8 {
		t.Errorf("T3 ST32 req len = %d, want 8", got)
	}
	if got := RespLen(Type3, ST32, 4); got != 1 {
		t.Errorf("T3 ST32 resp len = %d, want 1", got)
	}
}

func TestReqLenType1AlwaysOne(t *testing.T) {
	for _, op := range []Opcode{LD1, LD4, ST4, LD8} {
		if ReqLen(Type1, op, 8) != 1 || RespLen(Type1, op, 8) != 1 {
			t.Errorf("T1 %v packet lengths must be 1", op)
		}
	}
}

func TestBuildRequestStoreCells(t *testing.T) {
	payload := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	cells, err := BuildRequest(Type2, LittleEndian, ST8, 0x100, payload, 4, 3, 1, 2, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 2 {
		t.Fatalf("ST8 on 32-bit bus: %d cells, want 2", len(cells))
	}
	if cells[0].EOP || !cells[1].EOP {
		t.Error("EOP must be on the last cell only")
	}
	if cells[0].Addr != 0x100 || cells[1].Addr != 0x104 {
		t.Errorf("addresses %#x %#x", cells[0].Addr, cells[1].Addr)
	}
	if cells[0].BE != 0xf || cells[1].BE != 0xf {
		t.Errorf("byte enables %#x %#x, want 0xf", cells[0].BE, cells[1].BE)
	}
	if got := ExtractWriteData(LittleEndian, cells, 4); !bytes.Equal(got, payload) {
		t.Errorf("ExtractWriteData = %v, want %v", got, payload)
	}
}

func TestBuildRequestSubBusStore(t *testing.T) {
	cells, err := BuildRequest(Type2, LittleEndian, ST1, 0x103, []byte{0xab}, 4, 0, 0, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 1 {
		t.Fatalf("%d cells", len(cells))
	}
	if cells[0].BE != 0x8 {
		t.Errorf("BE = %#x, want 0x8 (lane 3)", cells[0].BE)
	}
	if got := cells[0].Data.Field(24, 8).Uint64(); got != 0xab {
		t.Errorf("lane 3 data = %#x", got)
	}
}

func TestBuildRequestBigEndianLanes(t *testing.T) {
	cells, err := BuildRequest(Type2, BigEndian, ST1, 0x103, []byte{0xab}, 4, 0, 0, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	// Big endian: address lane 3 maps to physical lane 0.
	if cells[0].BE != 0x1 {
		t.Errorf("BE = %#x, want 0x1", cells[0].BE)
	}
	if got := cells[0].Data.Field(0, 8).Uint64(); got != 0xab {
		t.Errorf("lane 0 data = %#x", got)
	}
}

func TestBuildRequestAlignment(t *testing.T) {
	if _, err := BuildRequest(Type2, LittleEndian, LD4, 0x102, nil, 4, 0, 0, 0, false); err == nil {
		t.Error("misaligned LD4 should fail")
	}
	if _, err := BuildRequest(Type2, LittleEndian, ST4, 0x100, []byte{1}, 4, 0, 0, 0, false); err == nil {
		t.Error("short payload should fail")
	}
	if _, err := BuildRequest(Type2, LittleEndian, LD4, 0x100, []byte{1}, 4, 0, 0, 0, false); err == nil {
		t.Error("payload on load should fail")
	}
	if _, err := BuildRequest(Type1, LittleEndian, RMW4, 0x100, []byte{1, 2, 3, 4}, 4, 0, 0, 0, false); err == nil {
		t.Error("RMW on Type1 should fail")
	}
}

func TestBuildRequestType3LoadSingleCell(t *testing.T) {
	cells, err := BuildRequest(Type3, LittleEndian, LD32, 0x200, nil, 4, 7, 2, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 1 || !cells[0].EOP {
		t.Fatalf("T3 LD32 request must be one EOP cell, got %d", len(cells))
	}
	if cells[0].TID != 7 || cells[0].Src != 2 {
		t.Errorf("tid/src = %d/%d", cells[0].TID, cells[0].Src)
	}
}

func TestBuildResponseLoad(t *testing.T) {
	data := make([]byte, 16)
	for i := range data {
		data[i] = byte(i + 1)
	}
	resp, err := BuildResponse(Type3, LittleEndian, LD16, 0x300, data, 4, 5, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp) != 4 {
		t.Fatalf("%d resp cells, want 4", len(resp))
	}
	for i, c := range resp {
		if c.ROpc != RespData {
			t.Errorf("cell %d ropc %#x", i, c.ROpc)
		}
		if c.Err() {
			t.Errorf("cell %d unexpected error", i)
		}
		if (i == len(resp)-1) != c.EOP {
			t.Errorf("cell %d EOP misplaced", i)
		}
		if c.TID != 5 || c.Src != 1 {
			t.Errorf("cell %d tid/src", i)
		}
	}
	if got := ExtractReadData(LittleEndian, LD16, 0x300, resp, 4); !bytes.Equal(got, data) {
		t.Errorf("ExtractReadData = %v", got)
	}
}

func TestBuildResponseError(t *testing.T) {
	resp, err := BuildResponse(Type3, LittleEndian, LD8, 0x0, nil, 4, 0, 0, true)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range resp {
		if !c.Err() {
			t.Error("error response cell missing error flag")
		}
	}
	resp, err = BuildResponse(Type3, LittleEndian, ST8, 0x0, nil, 4, 0, 0, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp) != 1 || !resp[0].Err() {
		t.Error("store error response malformed")
	}
}

func TestBuildResponseStoreAck(t *testing.T) {
	resp, err := BuildResponse(Type2, LittleEndian, ST8, 0x100, nil, 4, 0, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp) != 2 {
		t.Fatalf("T2 ST8 resp cells = %d, want 2 (symmetric)", len(resp))
	}
	for _, c := range resp {
		if c.ROpc != RespOK || c.Err() {
			t.Error("store ack should be RespOK")
		}
	}
}

// TestPackRoundTripProperty: packing payload bytes onto lanes and unpacking
// recovers the payload, for every endianness, bus width and offset.
func TestPackRoundTripProperty(t *testing.T) {
	f := func(seed int64, endianRaw, busRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		e := Endianness(endianRaw % 2)
		busBytes := 1 << (busRaw % 6) // 1..32
		size := 1 << rng.Intn(7)      // 1..64
		if size > busBytes {
			size = busBytes
		}
		var addr uint64
		if busBytes > size {
			addr = uint64(rng.Intn(busBytes/size)) * uint64(size)
		}
		payload := make([]byte, size)
		rng.Read(payload)
		w := PackLanes(e, addr, payload, busBytes)
		back := UnpackLanes(e, addr, w, size, busBytes)
		return bytes.Equal(payload, back)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestRequestRoundTripProperty: BuildRequest + ExtractWriteData is identity
// on store payloads across types, sizes, widths and endianness.
func TestRequestRoundTripProperty(t *testing.T) {
	f := func(seed int64, tyRaw, endianRaw, busRaw, sizeRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		ty := Type(int(tyRaw)%2 + 2) // Type2 or Type3
		e := Endianness(endianRaw % 2)
		busBytes := 4 << (busRaw % 4) // 4..32
		size := 1 << (sizeRaw % 7)    // 1..64
		op := Op(KindStore, size)
		addr := uint64(rng.Intn(1<<16)) &^ (uint64(size) - 1)
		payload := make([]byte, size)
		rng.Read(payload)
		cells, err := BuildRequest(ty, e, op, addr, payload, busBytes, 1, 2, 3, false)
		if err != nil {
			return false
		}
		return bytes.Equal(ExtractWriteData(e, cells, busBytes), payload)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestResponseRoundTripProperty: BuildResponse + ExtractReadData is identity
// on load payloads.
func TestResponseRoundTripProperty(t *testing.T) {
	f := func(seed int64, tyRaw, endianRaw, busRaw, sizeRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		ty := Type(int(tyRaw)%2 + 2)
		e := Endianness(endianRaw % 2)
		busBytes := 4 << (busRaw % 4)
		size := 1 << (sizeRaw % 7)
		op := Op(KindLoad, size)
		addr := uint64(rng.Intn(1<<16)) &^ (uint64(size) - 1)
		data := make([]byte, size)
		rng.Read(data)
		cells, err := BuildResponse(ty, e, op, addr, data, busBytes, 1, 2, false)
		if err != nil {
			return false
		}
		return bytes.Equal(ExtractReadData(e, op, addr, cells, busBytes), data)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEndiannessString(t *testing.T) {
	if LittleEndian.String() != "little" || BigEndian.String() != "big" {
		t.Error("endianness strings")
	}
}

// TestBEConservationProperty: the byte enables across a store request packet
// cover exactly the operation's bytes, no more, no less.
func TestBEConservationProperty(t *testing.T) {
	f := func(seed int64, tyRaw, busRaw, sizeRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		ty := Type(int(tyRaw)%2 + 2)
		busBytes := 4 << (busRaw % 4)
		size := 1 << (sizeRaw % 7)
		op := Op(KindStore, size)
		addr := uint64(rng.Intn(1<<16)) &^ (uint64(size) - 1)
		payload := make([]byte, size)
		cells, err := BuildRequest(ty, LittleEndian, op, addr, payload, busBytes, 0, 0, 0, false)
		if err != nil {
			return false
		}
		total := 0
		for _, c := range cells {
			for b := 0; b < busBytes; b++ {
				if c.BE&(1<<uint(b)) != 0 {
					total++
				}
			}
		}
		return total == size
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestExactlyOneEOPProperty: every built packet has exactly one EOP, on the
// final cell.
func TestExactlyOneEOPProperty(t *testing.T) {
	f := func(seed int64, tyRaw, kindRaw, busRaw, sizeRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		ty := Type(int(tyRaw)%2 + 2)
		busBytes := 4 << (busRaw % 4)
		size := 1 << (sizeRaw % 7)
		kind := KindLoad
		if kindRaw%2 == 1 {
			kind = KindStore
		}
		op := Op(kind, size)
		addr := uint64(rng.Intn(1<<16)) &^ (uint64(size) - 1)
		var payload []byte
		if op.HasWriteData() {
			payload = make([]byte, size)
		}
		cells, err := BuildRequest(ty, LittleEndian, op, addr, payload, busBytes, 0, 0, 0, false)
		if err != nil {
			return false
		}
		for i, c := range cells {
			if c.EOP != (i == len(cells)-1) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
