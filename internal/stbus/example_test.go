package stbus_test

import (
	"fmt"

	"crve/internal/stbus"
)

// ExampleBuildRequest packetises a 16-byte store for a Type 3 port with a
// 32-bit data bus: four data cells, EOP on the last.
func ExampleBuildRequest() {
	payload := []byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15}
	cells, err := stbus.BuildRequest(stbus.Type3, stbus.LittleEndian,
		stbus.ST16, 0x1000, payload, 4, 7, 0, 0, false)
	if err != nil {
		fmt.Println(err)
		return
	}
	for _, c := range cells {
		fmt.Printf("%v @%#x eop=%v\n", c.Opc, c.Addr, c.EOP)
	}
	// Output:
	// ST16 @0x1000 eop=false
	// ST16 @0x1004 eop=false
	// ST16 @0x1008 eop=false
	// ST16 @0x100c eop=true
}

// ExampleReqLen shows the Type 2 / Type 3 packetisation asymmetry for a
// 32-byte read on a 32-bit bus.
func ExampleReqLen() {
	fmt.Println("T2 request cells:", stbus.ReqLen(stbus.Type2, stbus.LD32, 4))
	fmt.Println("T3 request cells:", stbus.ReqLen(stbus.Type3, stbus.LD32, 4))
	fmt.Println("T3 response cells:", stbus.RespLen(stbus.Type3, stbus.LD32, 4))
	// Output:
	// T2 request cells: 8
	// T3 request cells: 1
	// T3 response cells: 8
}

// ExampleAddrMap_Route decodes addresses against a two-target map.
func ExampleAddrMap_Route() {
	m := stbus.UniformMap(2, 0x1000, 0x1000)
	fmt.Println(m.Route(0x1004), m.Route(0x2ffc), m.Route(0x9000))
	// Output: 0 1 -1
}
