package stbus

import (
	"testing"
	"testing/quick"
)

func TestAddrMapRoute(t *testing.T) {
	m := AddrMap{
		{Base: 0x1000, Size: 0x1000, Target: 0},
		{Base: 0x2000, Size: 0x1000, Target: 1},
	}
	cases := []struct {
		addr uint64
		want int
	}{
		{0x1000, 0}, {0x1fff, 0}, {0x2000, 1}, {0x2fff, 1},
		{0x0, -1}, {0x3000, -1}, {0xffffffff, -1},
	}
	for _, c := range cases {
		if got := m.Route(c.addr); got != c.want {
			t.Errorf("Route(%#x) = %d, want %d", c.addr, got, c.want)
		}
	}
}

func TestAddrMapValidate(t *testing.T) {
	good := AddrMap{{Base: 0, Size: 0x100, Target: 0}, {Base: 0x100, Size: 0x100, Target: 1}}
	if err := good.Validate(2); err != nil {
		t.Errorf("good map rejected: %v", err)
	}
	bad := []AddrMap{
		{{Base: 0, Size: 0, Target: 0}},
		{{Base: 0, Size: 0x200, Target: 0}, {Base: 0x100, Size: 0x100, Target: 1}},
		{{Base: 0, Size: 0x100, Target: 5}},
		{{Base: ^uint64(0) - 1, Size: 0x100, Target: 0}},
	}
	for i, m := range bad {
		if err := m.Validate(2); err == nil {
			t.Errorf("bad map %d accepted", i)
		}
	}
}

func TestUniformMap(t *testing.T) {
	m := UniformMap(4, 0x8000_0000, 0x1000)
	if err := m.Validate(4); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		a := 0x8000_0000 + uint64(i)*0x1000
		if got := m.Route(a); got != i {
			t.Errorf("Route(%#x) = %d, want %d", a, got, i)
		}
		if got := m.Route(a + 0xfff); got != i {
			t.Errorf("Route(%#x) = %d, want %d", a+0xfff, got, i)
		}
	}
}

// Property: every address inside a uniform map routes to the region that
// contains it, and addresses outside route to -1.
func TestUniformMapRouteProperty(t *testing.T) {
	m := UniformMap(8, 0x1000, 0x400)
	f := func(a uint32) bool {
		addr := uint64(a) % 0x5000
		got := m.Route(addr)
		if addr < 0x1000 || addr >= 0x1000+8*0x400 {
			return got == -1
		}
		return got == int(addr-0x1000)/0x400
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTransactionHelpers(t *testing.T) {
	tr := Transaction{Src: 3, TID: 7, StartCycle: 10, EndCycle: 25}
	if tr.Key() != (Key{Src: 3, TID: 7}) {
		t.Error("key mismatch")
	}
	if tr.Latency() != 15 {
		t.Errorf("latency %d", tr.Latency())
	}
	broken := Transaction{StartCycle: 10, EndCycle: 5}
	if broken.Latency() != 0 {
		t.Error("negative latency should clamp to 0")
	}
	if tr.String() == "" {
		t.Error("String should render")
	}
}
