// Package testcases defines the twelve generic test cases of the paper's
// Section 5: "Twelve test cases have been developed to cover the tests of
// all main features of the node such as out of order traffic or latency
// based arbitration." The tests are generic — they "depend on some HDL
// parameters" and "can be reused for all configurations of the Node" — so
// each is expressed as traffic/target constraints resolved against the node
// configuration at run time. Running the same test file with different seeds
// is how the flow approaches full functional coverage.
package testcases

import (
	"fmt"

	"crve/internal/catg"
	"crve/internal/core"
	"crve/internal/nodespec"
	"crve/internal/stbus"
)

// All returns the twelve-test suite in a stable order.
func All() []core.Test {
	return []core.Test{
		BasicWriteRead(),
		RandomMixed(),
		OutOfOrder(),
		LongBursts(),
		BackToBack(),
		Chunked(),
		ErrorPaths(),
		Programming(),
		HotTarget(),
		SlowTargets(),
		IdleJitter(),
		PriorityPressure(),
	}
}

// ByName returns the named test.
func ByName(name string) (core.Test, error) {
	for _, t := range All() {
		if t.Name == name {
			return t, nil
		}
	}
	return core.Test{}, fmt.Errorf("testcases: unknown test %q", name)
}

// Names lists the suite's test names in order.
func Names() []string {
	var out []string
	for _, t := range All() {
		out = append(out, t.Name)
	}
	return out
}

// BasicWriteRead is the bring-up test: word-sized writes and reads, gentle
// timing — the modern descendant of the past flow's write-then-read bench.
func BasicWriteRead() core.Test {
	return core.Test{
		Name: "basic_write_read",
		Traffic: catg.TrafficConfig{
			Ops:   30,
			Kinds: []stbus.OpKind{stbus.KindStore, stbus.KindLoad},
			Sizes: []int{4},
		},
		Target: catg.TargetConfig{MinLatency: 1, MaxLatency: 2},
	}
}

// RandomMixed drives the full legal operation mix with random sizes.
func RandomMixed() core.Test {
	return core.Test{
		Name: "random_mixed",
		Traffic: catg.TrafficConfig{
			Ops:    50,
			Kinds:  []stbus.OpKind{stbus.KindLoad, stbus.KindStore, stbus.KindRMW, stbus.KindSwap},
			Sizes:  []int{1, 2, 4, 8, 16, 32},
			PriMax: 7,
		},
		Target: catg.TargetConfig{MinLatency: 0, MaxLatency: 6, GntGapPct: 15},
	}
}

// OutOfOrder reproduces the paper's out-of-order forcing recipe: "short
// transactions are sent by one initiator to different targets, having
// different speed".
func OutOfOrder() core.Test {
	return core.Test{
		Name: "out_of_order",
		Traffic: catg.TrafficConfig{
			Ops:   60,
			Kinds: []stbus.OpKind{stbus.KindLoad},
			Sizes: []int{4},
		},
		TargetFor: func(cfg nodespec.Config, tgtIdx int) catg.TargetConfig {
			// Alternate fast and very slow targets.
			if tgtIdx%2 == 0 {
				return catg.TargetConfig{MinLatency: 20, MaxLatency: 25}
			}
			return catg.TargetConfig{MinLatency: 0, MaxLatency: 1}
		},
	}
}

// LongBursts exercises multi-cell packets (up to the 64-byte operation
// limit) and size/packetisation corner cases.
func LongBursts() core.Test {
	return core.Test{
		Name: "long_bursts",
		Traffic: catg.TrafficConfig{
			Ops:   35,
			Kinds: []stbus.OpKind{stbus.KindStore, stbus.KindLoad},
			Sizes: []int{16, 32, 64},
		},
		Target: catg.TargetConfig{MinLatency: 1, MaxLatency: 4},
	}
}

// BackToBack saturates the pipe: zero idle, fast targets, word traffic.
func BackToBack() core.Test {
	return core.Test{
		Name: "back_to_back",
		Traffic: catg.TrafficConfig{
			Ops:   80,
			Kinds: []stbus.OpKind{stbus.KindLoad, stbus.KindStore},
			Sizes: []int{4, 8},
		},
		Target: catg.TargetConfig{MinLatency: 0, MaxLatency: 0, QueueDepth: 8},
	}
}

// Chunked exercises lck chunk allocation and its atomicity.
func Chunked() core.Test {
	return core.Test{
		Name: "chunked",
		Traffic: catg.TrafficConfig{
			Ops:      50,
			Kinds:    []stbus.OpKind{stbus.KindStore, stbus.KindLoad},
			Sizes:    []int{4, 8},
			ChunkPct: 45,
		},
		Target: catg.TargetConfig{MinLatency: 0, MaxLatency: 3, GntGapPct: 10},
	}
}

// ErrorPaths drives unmapped addresses to cover the error responder.
func ErrorPaths() core.Test {
	return core.Test{
		Name: "error_paths",
		Traffic: catg.TrafficConfig{
			Ops:         50,
			Kinds:       []stbus.OpKind{stbus.KindLoad, stbus.KindStore},
			Sizes:       []int{4},
			UnmappedPct: 35,
		},
		Target: catg.TargetConfig{MinLatency: 0, MaxLatency: 4},
	}
}

// Programming mixes register-decoder accesses (priority reprogramming mid
// traffic) with normal traffic — the paper's Figure 6 "Programming
// Initiator" scenario folded into a generic test.
func Programming() core.Test {
	return core.Test{
		Name: "programming",
		TrafficFor: func(cfg nodespec.Config, initIdx int) catg.TrafficConfig {
			tc := catg.TrafficConfig{
				Ops:   45,
				Kinds: []stbus.OpKind{stbus.KindLoad, stbus.KindStore},
				Sizes: []int{4, 8},
			}
			if cfg.ProgPort {
				tc.ProgPct = 20
			}
			return tc
		},
		Traffic: catg.TrafficConfig{Ops: 45},
		Target:  catg.TargetConfig{MinLatency: 1, MaxLatency: 3},
	}
}

// HotTarget aims every initiator at target 0 to stress arbitration.
func HotTarget() core.Test {
	return core.Test{
		Name: "hot_target",
		TrafficFor: func(cfg nodespec.Config, initIdx int) catg.TrafficConfig {
			targets := []int{0}
			if !cfg.Connected(initIdx, 0) {
				targets = nil // partial crossbar: fall back to reachable set
			}
			return catg.TrafficConfig{
				Ops:     60,
				Kinds:   []stbus.OpKind{stbus.KindLoad, stbus.KindStore},
				Sizes:   []int{4},
				Targets: targets,
				PriMax:  15,
			}
		},
		Traffic: catg.TrafficConfig{Ops: 60},
		Target:  catg.TargetConfig{MinLatency: 2, MaxLatency: 5},
	}
}

// SlowTargets drives high-latency, grant-gapped targets (occupancy and
// back-pressure paths).
func SlowTargets() core.Test {
	return core.Test{
		Name: "slow_targets",
		Traffic: catg.TrafficConfig{
			Ops:   40,
			Kinds: []stbus.OpKind{stbus.KindLoad, stbus.KindStore},
			Sizes: []int{4, 16},
		},
		Target: catg.TargetConfig{MinLatency: 10, MaxLatency: 20, GntGapPct: 40, QueueDepth: 2},
	}
}

// IdleJitter inserts idle gaps between packets to cover restart paths.
func IdleJitter() core.Test {
	return core.Test{
		Name: "idle_jitter",
		Traffic: catg.TrafficConfig{
			Ops:     45,
			Kinds:   []stbus.OpKind{stbus.KindLoad, stbus.KindStore},
			Sizes:   []int{1, 2, 4},
			IdlePct: 60,
		},
		Target: catg.TargetConfig{MinLatency: 0, MaxLatency: 5, GntGapPct: 25},
	}
}

// PriorityPressure exercises the arbitration policies under permanent
// contention with the full priority-field range.
func PriorityPressure() core.Test {
	return core.Test{
		Name: "priority_pressure",
		Traffic: catg.TrafficConfig{
			Ops:    70,
			Kinds:  []stbus.OpKind{stbus.KindLoad, stbus.KindStore},
			Sizes:  []int{4},
			PriMax: 15,
		},
		Target: catg.TargetConfig{MinLatency: 3, MaxLatency: 6},
	}
}
