package testcases

import (
	"testing"

	"crve/internal/arb"
	"crve/internal/bca"
	"crve/internal/core"
	"crve/internal/nodespec"
	"crve/internal/stbus"
)

func refCfg() nodespec.Config {
	return nodespec.Config{
		Port:    stbus.PortConfig{Type: stbus.Type3, DataBits: 32},
		NumInit: 3, NumTgt: 2,
		Arch:   nodespec.FullCrossbar,
		ReqArb: arb.Programmable, RespArb: arb.Priority,
		Map:      stbus.UniformMap(2, 0x1000, 0x1000),
		ProgPort: true,
		ProgBase: 0x8000,
	}.WithDefaults()
}

func TestSuiteHasTwelveTests(t *testing.T) {
	suite := All()
	if len(suite) != 12 {
		t.Fatalf("suite has %d tests, the paper's has 12", len(suite))
	}
	seen := map[string]bool{}
	for _, tc := range suite {
		if tc.Name == "" {
			t.Error("unnamed test")
		}
		if seen[tc.Name] {
			t.Errorf("duplicate test %q", tc.Name)
		}
		seen[tc.Name] = true
	}
}

func TestByNameLookup(t *testing.T) {
	for _, name := range Names() {
		tc, err := ByName(name)
		if err != nil || tc.Name != name {
			t.Errorf("ByName(%q) = %v, %v", name, tc.Name, err)
		}
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("unknown name should fail")
	}
}

// TestEveryTestPassesOnBothViews runs the entire suite once per view on the
// reference configuration: every test must drain with clean checkers and
// scoreboard on both the RTL and the bug-free BCA model.
func TestEveryTestPassesOnBothViews(t *testing.T) {
	cfg := refCfg()
	for _, tc := range All() {
		tc := tc
		t.Run(tc.Name, func(t *testing.T) {
			for _, view := range []core.View{core.RTLView, core.BCAView} {
				res, err := core.RunTest(cfg, view, tc, 1001, core.RunOptions{})
				if err != nil {
					t.Fatalf("%v: %v", view, err)
				}
				if !res.Passed() {
					detail := ""
					if len(res.Violations) > 0 {
						detail = res.Violations[0].String()
					} else if len(res.ScoreErrors) > 0 {
						detail = res.ScoreErrors[0]
					}
					t.Fatalf("%v failed: %s\n%s", view, res.Summary(), detail)
				}
			}
		})
	}
}

// TestOutOfOrderTestForcesReordering checks the paper's §5 recipe works: the
// out_of_order test must hit the reordered completion bin.
func TestOutOfOrderTestForcesReordering(t *testing.T) {
	cfg := refCfg()
	res, err := core.RunTest(cfg, core.RTLView, OutOfOrder(), 5, core.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Passed() {
		t.Fatalf("out_of_order failed: %s", res.Summary())
	}
	if res.Coverage.MustItem("completion_order").Hits("reordered") == 0 {
		t.Error("out_of_order test did not force reordered completion")
	}
}

// TestProgrammingTestTouchesRegisters checks the programming test reaches
// the register decoder on a prog-port configuration.
func TestProgrammingTestTouchesRegisters(t *testing.T) {
	cfg := refCfg()
	res, err := core.RunTest(cfg, core.RTLView, Programming(), 9, core.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Passed() {
		t.Fatalf("programming failed: %s", res.Summary())
	}
	if res.Coverage.MustItem("route").Hits("prog") == 0 {
		t.Error("programming test never reached the programming region")
	}
}

// TestErrorPathsCoverErrBin checks the error_paths test hits the error
// response bin.
func TestErrorPathsCoverErrBin(t *testing.T) {
	cfg := refCfg()
	res, err := core.RunTest(cfg, core.RTLView, ErrorPaths(), 3, core.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Passed() {
		t.Fatalf("error_paths failed: %s", res.Summary())
	}
	if res.Coverage.MustItem("response").Hits("err") == 0 {
		t.Error("error_paths test produced no error response")
	}
}

// TestSuiteCatchesEveryBCABug is the in-package version of experiment E2:
// for each seeded bug there is at least one (test, seed) in the suite whose
// port-level checks or scoreboard fail on the bugged BCA model.
func TestSuiteCatchesEveryBCABug(t *testing.T) {
	cfg := refCfg()
	cfg.ReqArb = arb.LRU // exercise the LRU policy (bug 1)
	cfg.ProgPort = false
	t2cfg := cfg
	t2cfg.Port.Type = stbus.Type2
	cfgFor := func(b bca.Bugs) nodespec.Config {
		if b.T2OrderIgnored {
			return t2cfg
		}
		return cfg
	}
	for bi, bug := range bca.AllBugs() {
		bug := bug
		t.Run(bca.BugNames()[bi], func(t *testing.T) {
			c := cfgFor(bug)
			caught := false
			for _, tc := range All() {
				for seed := int64(1); seed <= 2 && !caught; seed++ {
					pr, err := core.RunPair(c, tc, seed, bug)
					if err != nil {
						t.Fatal(err)
					}
					// Detection = any checker/scoreboard failure on the BCA
					// run, or an alignment drop below sign-off.
					if !pr.BCA.Passed() || !pr.Alignment.AllPass() {
						caught = true
					}
				}
				if caught {
					break
				}
			}
			if !caught {
				t.Errorf("bug %v escaped the whole suite", bug.List())
			}
		})
	}
}
